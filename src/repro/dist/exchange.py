"""Ghost-cell-expansion exchange geometry (Fig. 4, Sect. 2.1).

Exchanging ``h > 1`` halo layers raises the corner problem: the trapezoid
updates need ghost data not just on faces but along edges and corners of
the stored box.  Rather than sending up to 26 messages, the paper's
scheme exchanges the three dimensions *consecutively* and lets every
message span the **already ghost-extended** extents of the dimensions
exchanged before it — "the data received in the previous step is included
in the messages of the following exchange steps" — so edge and corner
data rides along in exactly six messages (fewer at domain boundaries).

:func:`exchange_plan` returns, per rank, the list of

    ``(dim, side, peer_rank, send_box, recv_box)``

tuples in phase order (dim 0, then 1, then 2), with all boxes in global
coordinates.  The geometry is pure — no communication happens here —
which is what makes it unit-testable and reusable by both the functional
solver (:mod:`repro.dist.solver`) and the cluster performance model
(:mod:`repro.dist.cluster_sim`).
"""

from __future__ import annotations

from typing import List, Tuple

from ..grid.region import Box
from .decomp import CartesianDecomposition, RankGeometry

__all__ = ["ExchangeEntry", "exchange_plan", "plan_bytes"]

#: (dim, side, peer, send_box, recv_box) — boxes in global coordinates.
ExchangeEntry = Tuple[int, int, int, Box, Box]


def exchange_plan(decomp: CartesianDecomposition,
                  geo: RankGeometry) -> List[ExchangeEntry]:
    """The 3-phase send/recv schedule of one rank.

    Phase ``d`` sends a slab of ``h`` layers hugging the core face along
    dimension ``d``; across dimensions already exchanged (``dd < d``) the
    slab spans the full *stored* extent (ghost layers included — the
    expansion), across dimensions not yet exchanged (``dd > d``) only the
    core extent.  Both peers compute identical box pairs, so a rank's
    ``recv_box`` equals its peer's ``send_box`` exactly.

    Raises
    ------
    ValueError
        If a core is thinner than ``h`` along a dimension that has a
        neighbor: the send slab must consist of cells this rank fully
        updated itself, so the core must be at least h cells wide.
    """
    h = decomp.halo
    core, stored = geo.core, geo.stored
    plan: List[ExchangeEntry] = []
    for dim in range(3):
        for side in (-1, 1):
            peer = decomp.neighbor(geo.rank, dim, side)
            if peer is None:
                continue
            if core.hi[dim] - core.lo[dim] < h:
                raise ValueError(
                    f"rank {geo.rank}: core spans "
                    f"{core.hi[dim] - core.lo[dim]} cells along dim {dim} "
                    f"but the h-layer exchange needs at least h cells "
                    f"(h={h}); use fewer processes or a thinner halo"
                )
            send_lo, send_hi = list(core.lo), list(core.hi)
            recv_lo, recv_hi = list(core.lo), list(core.hi)
            for dd in range(3):
                if dd < dim:  # already exchanged: span the ghost extension
                    send_lo[dd], send_hi[dd] = stored.lo[dd], stored.hi[dd]
                    recv_lo[dd], recv_hi[dd] = stored.lo[dd], stored.hi[dd]
            if side < 0:
                send_hi[dim] = core.lo[dim] + h
                recv_lo[dim], recv_hi[dim] = core.lo[dim] - h, core.lo[dim]
            else:
                send_lo[dim] = core.hi[dim] - h
                recv_lo[dim], recv_hi[dim] = core.hi[dim], core.hi[dim] + h
            plan.append((dim, side, peer,
                         Box(tuple(send_lo), tuple(send_hi)),
                         Box(tuple(recv_lo), tuple(recv_hi))))
    return plan


def plan_bytes(plan: List[ExchangeEntry], itemsize: int = 8) -> int:
    """Bytes this rank sends per superstep under ``plan`` (for models)."""
    return sum(send.ncells * itemsize for (_, _, _, send, _) in plan)
