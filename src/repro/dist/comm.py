"""Abstract communicator protocol for the distributed solvers.

The solvers in :mod:`repro.dist.solver` are written against this small
protocol rather than a concrete transport, so the same code runs on

* :class:`repro.dist.simmpi.RankComm` — the thread-backed simulated MPI
  used by the test-suite and the examples (no external dependencies),
* :class:`repro.dist.procmpi.ProcComm` — true multiprocess ranks with
  shared-memory fields and halo rings (the ``procmpi`` backend), and
* a real MPI library via :class:`MPI4PyComm`, a thin adapter that slots
  in when ``mpi4py`` is available (it is deliberately *not* imported at
  module load, so the package works on machines without MPI).

The surface is the minimal subset the ghost-cell-expansion protocol
needs: point-to-point ``send``/``recv``/``sendrecv`` plus the three
collectives the drivers use (``gather``, ``allreduce_max``, ``barrier``).
Sends are *buffered* (copy-on-send): a rank may mutate its buffer the
moment ``send`` returns, and consecutive buffered sends cannot deadlock —
the property the 3-phase exchange relies on.
"""

from __future__ import annotations

import copy as _copy
from abc import ABC, abstractmethod
from typing import Any, List, Optional

import numpy as np

__all__ = ["Comm", "MPI4PyComm", "snapshot"]


def snapshot(data: Any) -> Any:
    """Copy-on-send: detach a message from the sender's buffer.

    Shared by every transport that implements buffered sends (simmpi's
    queues, procmpi's pickled envelopes and root-local gather values),
    so the copy semantics cannot diverge between them.
    """
    if isinstance(data, np.ndarray):
        return data.copy()
    return _copy.deepcopy(data)


class Comm(ABC):
    """Minimal communicator protocol (see module docstring)."""

    #: This process's rank in ``[0, size)``.
    rank: int
    #: Number of participating processes.
    size: int

    @abstractmethod
    def send(self, dest: int, data: Any) -> None:
        """Buffered send to ``dest`` (copy-on-send; returns immediately)."""

    @abstractmethod
    def recv(self, src: int) -> Any:
        """Blocking receive of the next message from ``src``."""

    @abstractmethod
    def sendrecv(self, dest: int, data: Any, src: int) -> Any:
        """Combined exchange: send to ``dest``, receive from ``src``."""

    @abstractmethod
    def gather(self, value: Any, root: int = 0) -> Optional[List[Any]]:
        """Collect one value per rank; the rank-ordered list at ``root``,
        ``None`` elsewhere."""

    @abstractmethod
    def allreduce_max(self, value: float) -> float:
        """Global maximum of ``value``, returned on every rank."""

    @abstractmethod
    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""


class MPI4PyComm(Comm):
    """Adapter running the protocol over a real ``mpi4py`` communicator.

    Construction requires ``mpi4py``; the import is local so the rest of
    the package carries no MPI dependency.  Messages use the generic
    (pickle-based) mpi4py path — ghost slabs are contiguous array copies
    already, so there is nothing to gain from the buffer interface here.

    ``send`` must honour the protocol's buffered (non-blocking) contract:
    the 3-phase exchange issues all of a phase's sends before any
    receive, and MPI's standard-mode send switches to rendezvous above
    the eager threshold, which would deadlock two peers sending each
    other large ghost slabs.  The adapter therefore uses ``isend`` and
    parks the request; outstanding requests are drained opportunistically
    on ``recv`` and completely at every synchronisation point.
    """

    def __init__(self, mpi_comm: Any = None) -> None:
        try:
            from mpi4py import MPI  # noqa: PLC0415 — optional dependency
        except ImportError as exc:  # pragma: no cover - environment-dependent
            raise RuntimeError(
                "MPI4PyComm requires the optional 'mpi4py' package; "
                "install it or use the simmpi backend"
            ) from exc
        self._mpi = MPI
        self._comm = mpi_comm if mpi_comm is not None else MPI.COMM_WORLD
        self.rank = self._comm.Get_rank()
        self.size = self._comm.Get_size()
        self._pending: List[Any] = []

    # pragma-no-cover rationale: exercised only when mpi4py is installed.
    def _drain(self, wait: bool) -> None:  # pragma: no cover
        if wait and self._pending:
            self._mpi.Request.waitall(self._pending)
            self._pending.clear()
        else:
            self._pending = [r for r in self._pending if not r.Test()]

    def send(self, dest: int, data: Any) -> None:  # pragma: no cover
        self._pending.append(self._comm.isend(data, dest=dest))

    def recv(self, src: int) -> Any:  # pragma: no cover
        out = self._comm.recv(source=src)
        self._drain(wait=False)
        return out

    def sendrecv(self, dest: int, data: Any, src: int) -> Any:  # pragma: no cover
        return self._comm.sendrecv(data, dest=dest, source=src)

    def gather(self, value: Any, root: int = 0):  # pragma: no cover
        self._drain(wait=True)
        return self._comm.gather(value, root=root)

    def allreduce_max(self, value: float) -> float:  # pragma: no cover
        self._drain(wait=True)
        return self._comm.allreduce(value, op=self._mpi.MAX)

    def barrier(self) -> None:  # pragma: no cover
        self._drain(wait=True)
        self._comm.Barrier()
