"""Shared-memory blocks for the multiprocess (``procmpi``) rail.

The process-backed transport keeps the *bulk* data — the global field a
solve starts from, the assembled result, and the per-pair halo rings —
in :mod:`multiprocessing.shared_memory` segments, so rank processes read
and write them in place instead of funnelling whole subdomains through
pickling pipes.  This module owns the two lifecycle problems that come
with that:

* **ownership** — exactly one process (the parent driving the solve)
  creates and unlinks every segment.  :class:`ShmPool` tracks what it
  created and tears all of it down in one idempotent :meth:`~ShmPool.
  cleanup` call, so a ``finally`` block suffices even when ranks crash
  mid-exchange.  Should the parent itself die hard, the segments are
  still registered with its :mod:`multiprocessing.resource_tracker`,
  which unlinks them at interpreter teardown — the crash backstop.

* **the non-owner attach quirk** — on Python < 3.13, *attaching* to an
  existing segment also registers it with the resource tracker, so a
  rank process exiting after ``close()`` would have the tracker "clean
  up" (unlink!) the parent's live segment and print leak warnings.
  :func:`attach_block` therefore suppresses the tracker registration
  for non-owner attaches (``track=False`` where available, a scoped
  no-op register shim before 3.13); only the owning pool ever unlinks.

Segments are named ``repro-shm-<pid>-<hex>`` so the test-suite can scan
``/dev/shm`` (:func:`live_segments`) and assert nothing leaked.
"""

from __future__ import annotations

import os
import secrets
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "SEGMENT_PREFIX",
    "ShmBlockHandle",
    "ShmArrayHandle",
    "ShmPool",
    "attach_block",
    "attach_array",
    "live_segments",
    "segment_creates",
]

#: Every segment this package creates carries this name prefix.
SEGMENT_PREFIX = "repro-shm-"

#: Registry name of the creation counter (see :mod:`repro.obs.registry`).
SEGMENTS_COUNTER = "shm.segment_creates"


def segment_creates() -> int:
    """Monotonic count of segments created by this process's pools.

    Deterministic for a fixed call sequence — the serving layer's
    throughput tests assert setup amortisation on this counter instead
    of a wall clock.  Compatibility read of the process-wide obs
    registry's :data:`SEGMENTS_COUNTER`.
    """
    from ..obs import registry

    return int(registry.counter(SEGMENTS_COUNTER))


@dataclass(frozen=True)
class ShmBlockHandle:
    """Picklable descriptor of a raw shared-memory block."""

    name: str
    nbytes: int


@dataclass(frozen=True)
class ShmArrayHandle:
    """Picklable descriptor of an ndarray living in a shared block."""

    name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Size of the described array in bytes."""
        n = int(np.prod(self.shape)) if self.shape else 1
        return n * np.dtype(self.dtype).itemsize


def attach_block(handle: ShmBlockHandle) -> shared_memory.SharedMemory:
    """Attach to an existing block as a non-owner (tracker-safe).

    The caller must ``close()`` the returned object (never ``unlink()``
    — that is the owning :class:`ShmPool`'s job).
    """
    try:
        # Python >= 3.13: attaching without tracker registration is API.
        return shared_memory.SharedMemory(name=handle.name, track=False)
    except TypeError:
        pass
    # Python 3.10-3.12: scoped no-op register shim.  Unregistering
    # *after* the attach is not equivalent: under the fork start method
    # all processes share one tracker, so that would drop the owner's
    # registration and break its unlink-time bookkeeping.
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda name, rtype: None
    try:
        return shared_memory.SharedMemory(name=handle.name)
    finally:
        resource_tracker.register = original


@contextmanager
def attach_array(handle: ShmArrayHandle) -> Iterator[np.ndarray]:
    """Context manager: the described array, mapped from shared memory.

    The mapping is closed on exit; the caller must not keep references
    to the yielded array (copy out what outlives the block).
    """
    shm = attach_block(ShmBlockHandle(handle.name, handle.nbytes))
    arr: Optional[np.ndarray] = np.ndarray(
        handle.shape, dtype=np.dtype(handle.dtype), buffer=shm.buf)
    try:
        yield arr
    finally:
        arr = None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - caller kept a view alive
            pass


class ShmPool:
    """Owner of a set of shared-memory segments (create, track, unlink)."""

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self._views: List[np.ndarray] = []

    def _new_segment(self, nbytes: int) -> shared_memory.SharedMemory:
        nbytes = max(1, int(nbytes))
        while True:
            name = f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
            try:
                shm = shared_memory.SharedMemory(create=True, size=nbytes,
                                                 name=name)
                break
            except FileExistsError:  # pragma: no cover - 2^32 collision
                continue
        from ..obs import registry

        registry.inc(SEGMENTS_COUNTER)
        self._segments.append(shm)
        return shm

    def create_block(self, nbytes: int) -> ShmBlockHandle:
        """Allocate a raw block; returns its picklable handle."""
        shm = self._new_segment(nbytes)
        return ShmBlockHandle(name=shm.name, nbytes=int(nbytes))

    def create_array(self, shape: Tuple[int, ...], dtype,
                     ) -> Tuple[ShmArrayHandle, np.ndarray]:
        """Allocate a zero-initialised shared ndarray.

        Returns the picklable handle plus the parent's own mapped view
        (valid until :meth:`cleanup`).
        """
        dt = np.dtype(dtype)
        n = int(np.prod(shape)) if shape else 1
        shm = self._new_segment(n * dt.itemsize)
        arr = np.ndarray(shape, dtype=dt, buffer=shm.buf)
        arr.fill(0)
        self._views.append(arr)
        return ShmArrayHandle(name=shm.name, shape=tuple(int(s) for s in shape),
                              dtype=dt.str), arr

    def cleanup(self) -> None:
        """Close and unlink everything this pool created (idempotent)."""
        self._views.clear()
        segments, self._segments = self._segments, []
        for shm in segments:
            try:
                shm.close()
            except (BufferError, OSError):  # pragma: no cover
                pass
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass

    def __enter__(self) -> "ShmPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.cleanup()


def live_segments() -> Optional[List[str]]:
    """Names of this package's segments currently backed by ``/dev/shm``.

    Returns ``None`` on platforms without a ``/dev/shm`` filesystem (the
    leak assertions in the test-suite skip there).
    """
    root = Path("/dev/shm")
    if not root.is_dir():
        return None
    try:
        return sorted(p.name for p in root.iterdir()
                      if p.name.startswith(SEGMENT_PREFIX))
    except OSError:  # pragma: no cover - racing teardown
        return None
