"""Process-backed MPI: run N ranks as real OS processes.

The thread rail (:mod:`repro.dist.simmpi`) overlaps ranks only while
NumPy releases the GIL; this transport runs one *process* per rank via
:mod:`multiprocessing`, so ranks overlap unconditionally and the rail
exercises genuine process isolation — separate address spaces, pickled
problem specs, shared-memory halo traffic, and process lifecycle (spawn
vs fork, crash recovery, segment cleanup).

:class:`ProcComm` implements the same :class:`repro.dist.comm.Comm`
protocol with the same three documented guarantees:

* **copy-on-send** — the message is detached from the sender's buffer at
  the moment ``send`` returns (copied into a shared-memory slot, or
  pickled immediately), so consecutive buffered sends cannot deadlock;
* **source-ordered delivery** — messages between one (src, dst) pair
  arrive in send order (single inbox queue per rank; per-producer FIFO);
* **fail-fast collectives** — when any rank raises (or dies outright),
  the others are released from barriers, receives and full send rings
  with :class:`ProcMPIError` instead of hanging, and :func:`run_procs`
  re-raises the original exception in the parent.

Transport
---------
Array messages ride in preallocated **halo rings**: per ordered rank
pair, a shared-memory block of ``slots`` fixed-size slots guarded by a
semaphore (flow control), with only a tiny envelope going through the
inbox :class:`multiprocessing.Queue`.  Anything that does not fit a slot
— collectives, stats objects, oversized arrays — falls back to an
eagerly pickled envelope, which preserves the semantics at pipe cost.

Lifecycle
---------
:class:`ProcWorld` owns a *persistent* set of rank processes: spawn,
queues, barrier and halo rings are paid once, then any number of jobs
(``fn(comm, rank, *args)`` fan-outs) run against the warm world —
the mechanism behind ``repro.serve``'s worker pools.  :func:`run_procs`
is the one-shot convenience wrapper (spawn, run one job, tear down).
Failure is crash-only: a failed world refuses further jobs and is
replaced wholesale, never repaired in place.

Spawn vs fork
-------------
The start method defaults to ``fork`` where available (Linux; process
creation is milliseconds instead of a full interpreter re-import) and
``spawn`` elsewhere (the macOS/Windows default).  Override with the
``REPRO_PROCMPI_START`` environment variable or the ``start_method``
argument.  Because jobs are dispatched to the persistent rank processes
through queues, the rank function and its arguments must pickle under
*every* start method (module-level functions, no lambdas); the
requirement is checked up front so the error is a clear
:class:`ProcMPIError` rather than a wedged world.
"""

from __future__ import annotations

import os
import pickle
import queue as _queue
import threading
import traceback
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Tuple

import numpy as np

from .comm import Comm, snapshot as _snapshot
from .shm import ShmBlockHandle, ShmPool, attach_block

__all__ = ["ProcMPIError", "ProcComm", "ProcWorld", "run_procs",
           "default_start_method", "process_spawns"]

#: How long a blocked receive/barrier/ring-send waits before concluding
#: the run is wedged (mirrors ``simmpi.DEFAULT_TIMEOUT``).
DEFAULT_TIMEOUT = 120.0
_POLL = 0.05
#: Ring slots are padded to this alignment.
_SLOT_ALIGN = 64
#: Outstanding messages allowed per ordered pair before a send blocks.
DEFAULT_SLOTS = 2


class ProcMPIError(RuntimeError):
    """A process-MPI failure: timeout, aborted/dead peer, or bad rank."""


def default_start_method() -> str:
    """``REPRO_PROCMPI_START`` if set, else fork where available."""
    env = os.environ.get("REPRO_PROCMPI_START")
    if env:
        return env
    import multiprocessing as mp

    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _abort_released(msg: str) -> ProcMPIError:
    """An error raised because *another* rank failed (not a root cause).

    The tag survives pickling (exception ``__dict__`` rides along), so
    the parent can re-raise a genuine :class:`ProcMPIError` root cause
    — a bad peer rank, a ring-order violation — in preference to the
    release errors it triggered in the other ranks.
    """
    exc = ProcMPIError(msg)
    exc.abort_induced = True
    return exc


@dataclass(frozen=True)
class _Ring:
    """One ordered pair's flow-controlled shared-memory slots."""

    handle: ShmBlockHandle
    slot_bytes: int
    slots: int
    sem: Any  # multiprocessing BoundedSemaphore(slots)


@dataclass
class _Links:
    """Everything a rank process needs; passed at Process creation.

    All members are either picklable descriptors or multiprocessing
    primitives, which may be inherited through ``Process`` arguments
    under every start method.
    """

    size: int
    timeout: float
    abort: Any       # mp.Event
    barrier: Any     # mp.Barrier(size)
    inboxes: List[Any]   # one mp.Queue per rank
    result_q: Any    # mp.Queue back to the parent
    rings: Dict[Tuple[int, int], _Ring]


class ProcComm(Comm):
    """One rank's endpoint over the multiprocess transport."""

    def __init__(self, rank: int, links: _Links) -> None:
        self.rank = int(rank)
        self.size = links.size
        self._links = links
        #: Messages dequeued while waiting for a different (src, channel).
        self._stash: Dict[Tuple[int, str], Deque[Any]] = defaultdict(deque)
        #: Ring positions: shm messages sent per dest / decoded per src.
        self._sent: Dict[int, int] = defaultdict(int)
        self._decoded: Dict[int, int] = defaultdict(int)
        self._attached: Dict[Tuple[int, int], Any] = {}

    # -- internals ---------------------------------------------------------------

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise ProcMPIError(f"rank {peer} outside world of size {self.size}")
        if peer == self.rank:
            raise ProcMPIError("self-messaging is not supported")

    def _ring_buf(self, pair: Tuple[int, int]):
        shm = self._attached.get(pair)
        if shm is None:
            shm = attach_block(self._links.rings[pair].handle)
            self._attached[pair] = shm
        return shm.buf

    def _wait(self, ready: Callable[[], bool], what: str) -> None:
        """Poll ``ready`` until true, abort, or timeout (fail-fast)."""
        waited = 0.0
        while True:
            if self._links.abort.is_set():
                raise _abort_released(f"{what} aborted: another rank failed")
            if ready():
                return
            waited += _POLL
            if waited >= self._links.timeout:
                raise ProcMPIError(
                    f"rank {self.rank}: {what} timed out after "
                    f"{self._links.timeout:.0f}s (deadlocked exchange or "
                    "dead peer?)")

    def _decode(self, env: Tuple) -> Tuple[int, str, Any]:
        """Envelope -> (src, channel, value); frees ring slots eagerly.

        Decoding happens at *dequeue* time even for stashed messages, so
        a slot is never held hostage by an out-of-order receive and the
        sender's semaphore is released as early as possible.
        """
        kind, channel, src = env[0], env[1], env[2]
        if kind == "pkl":
            return src, channel, pickle.loads(env[3])
        # kind == "shm": (slot, shape, dtype.str)
        slot, shape, dtype = env[3], env[4], env[5]
        ring = self._links.rings[(src, self.rank)]
        expect = self._decoded[src] % ring.slots
        if slot != expect:  # pragma: no cover - internal invariant
            raise ProcMPIError(
                f"rank {self.rank}: ring slot {slot} from rank {src}, "
                f"expected {expect} (ordering violated)")
        buf = self._ring_buf((src, self.rank))
        n = int(np.prod(shape)) if shape else 1
        vals = np.frombuffer(buf, dtype=np.dtype(dtype), count=n,
                             offset=slot * ring.slot_bytes)
        out = vals.reshape(shape).copy()
        del vals
        self._decoded[src] += 1
        ring.sem.release()
        return src, channel, out

    def _get(self, src: int, channel: str, what: str) -> Any:
        stash = self._stash[(src, channel)]
        if stash:
            return stash.popleft()
        inbox = self._links.inboxes[self.rank]
        while True:
            got: List[Any] = []

            def ready() -> bool:
                try:
                    got.append(inbox.get(timeout=_POLL))
                    return True
                except _queue.Empty:
                    return False

            self._wait(ready, what)
            sender, chan, value = self._decode(got[0])
            if (sender, chan) == (src, channel):
                return value
            self._stash[(sender, chan)].append(value)

    def _put(self, dest: int, data: Any, channel: str) -> None:
        ring = self._links.rings.get((self.rank, dest))
        if (channel == "p2p" and ring is not None
                and isinstance(data, np.ndarray)
                and not data.dtype.hasobject
                and 0 < data.nbytes <= ring.slot_bytes):
            self._wait(lambda: ring.sem.acquire(timeout=_POLL),
                       f"send to rank {dest} (ring full)")
            slot = self._sent[dest] % ring.slots
            self._sent[dest] += 1
            flat = np.ascontiguousarray(data)
            dst = np.frombuffer(self._ring_buf((self.rank, dest)), np.uint8,
                                count=flat.nbytes,
                                offset=slot * ring.slot_bytes)
            dst[:] = flat.reshape(-1).view(np.uint8)
            del dst
            env = ("shm", channel, self.rank, slot, data.shape,
                   data.dtype.str)
        else:
            # Eager pickling *is* the copy-on-send snapshot: the sender
            # may mutate its buffer the moment this returns.
            env = ("pkl", channel, self.rank,
                   pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL))
        self._links.inboxes[dest].put(env)

    def close(self) -> None:
        """Drop this rank's ring mappings (parent owns the segments)."""
        attached, self._attached = self._attached, {}
        for shm in attached.values():
            try:
                shm.close()
            except BufferError:  # pragma: no cover - view still alive
                pass

    # -- point-to-point ----------------------------------------------------------

    def send(self, dest: int, data: Any) -> None:
        """Buffered send: the message is detached from ``data`` now."""
        self._check_peer(dest)
        self._put(dest, data, "p2p")

    def recv(self, src: int) -> Any:
        """Blocking receive of the next message from ``src``."""
        self._check_peer(src)
        return self._get(src, "p2p", f"recv from rank {src}")

    def sendrecv(self, dest: int, data: Any, src: int) -> Any:
        """Exchange: buffered send to ``dest``, then receive from ``src``."""
        self.send(dest, data)
        return self.recv(src)

    # -- collectives -------------------------------------------------------------

    def barrier(self) -> None:
        """Synchronise all ranks; raises :class:`ProcMPIError` on abort."""
        try:
            self._links.barrier.wait(timeout=self._links.timeout)
        except threading.BrokenBarrierError:
            msg = f"rank {self.rank}: barrier broken (peer failed or timeout)"
            if self._links.abort.is_set():
                raise _abort_released(msg) from None
            raise ProcMPIError(msg) from None

    def gather(self, value: Any, root: int = 0) -> Optional[List[Any]]:
        """Rank-ordered list of everyone's ``value`` at ``root``, else None."""
        if self.rank == root:
            out: List[Any] = []
            for src in range(self.size):
                if src == root:
                    out.append(_snapshot(value))
                else:
                    out.append(self._get(src, "coll",
                                         f"gather from rank {src}"))
            return out
        self._put(root, value, "coll")
        return None

    def _bcast(self, value: Any, root: int) -> Any:
        if self.rank == root:
            for dst in range(self.size):
                if dst != root:
                    self._put(dst, value, "coll")
            return value
        return self._get(root, "coll", f"bcast from rank {root}")

    def allreduce_max(self, value: float) -> float:
        """Global maximum, available on every rank (gather + broadcast)."""
        gathered = self.gather(value, root=0)
        result = max(gathered) if self.rank == 0 else None
        return self._bcast(result, root=0)


# ---------------------------------------------------------------------------
# The drivers: a persistent rank world, and the one-shot run_procs on top.
# ---------------------------------------------------------------------------

#: Registry name of the spawn counter (see :mod:`repro.obs.registry`).
SPAWNS_COUNTER = "procmpi.process_spawns"


def process_spawns() -> int:
    """Monotonic count of rank processes this module has started.

    Deterministic for a fixed call sequence, so throughput tests can
    assert setup amortisation ("a warm pool spawns 2x fewer processes")
    without touching a wall clock.  Compatibility read of the
    process-wide obs registry's :data:`SPAWNS_COUNTER`.
    """
    from ..obs import registry

    return int(registry.counter(SPAWNS_COUNTER))


def _count_spawns(n: int) -> None:
    from ..obs import registry

    registry.inc(SPAWNS_COUNTER, n)


def _serve_main(rank: int, links: _Links, task_q: Any) -> None:
    """Entry point of one persistent rank process.

    Serves a stream of ``("job", job_id, fn, args)`` tasks until the
    ``("stop",)`` sentinel arrives.  A task that raises aborts the world
    and *ends this process*: a failed world is never reused (crash-only
    recovery) — the owning :class:`ProcWorld` reports the root cause and
    refuses further jobs, and its caller spawns a fresh world.
    """
    comm = ProcComm(rank, links)
    failed = False
    try:
        while True:
            msg = task_q.get()
            if msg[0] == "stop":
                break
            _, job_id, fn, args = msg
            try:
                out = fn(comm, rank, *args)
                # Pickle the result ourselves: a Queue pickles in its
                # feeder *thread*, where a failure is silently dropped —
                # the parent would wait forever for a report that never
                # comes.  Done here, an unpicklable return value is just
                # another job failure with a clear message.
                ok_payload = pickle.dumps(out,
                                          protocol=pickle.HIGHEST_PROTOCOL)
            except BaseException as exc:  # noqa: BLE001 — must reach the parent
                failed = True
                links.abort.set()
                try:
                    links.barrier.abort()
                except Exception:
                    pass
                try:
                    payload: Optional[bytes] = pickle.dumps(exc)
                except Exception:
                    payload = None
                links.result_q.put(("err", rank, job_id, payload, repr(exc),
                                    traceback.format_exc()))
                break
            else:
                links.result_q.put(("ok", rank, job_id, ok_payload))
    finally:
        if failed:
            # The world is aborting: nobody will drain our outbound halo
            # messages, and a blocked queue feeder would turn this rank
            # into a zombie.  Discard instead of flushing.
            for q in links.inboxes:
                try:
                    q.cancel_join_thread()
                except Exception:
                    pass
        comm.close()


def _make_rings(ctx, pool: ShmPool,
                pair_bytes: Optional[Mapping[Tuple[int, int], int]],
                slots: int, n_ranks: int) -> Dict[Tuple[int, int], _Ring]:
    rings: Dict[Tuple[int, int], _Ring] = {}
    for (src, dst), nbytes in (pair_bytes or {}).items():
        if not (0 <= src < n_ranks and 0 <= dst < n_ranks and src != dst):
            raise ValueError(f"bad ring pair ({src}, {dst}) for "
                             f"{n_ranks} ranks")
        if nbytes <= 0:
            continue
        slot_bytes = -(-int(nbytes) // _SLOT_ALIGN) * _SLOT_ALIGN
        handle = pool.create_block(slot_bytes * slots)
        rings[(src, dst)] = _Ring(handle=handle, slot_bytes=slot_bytes,
                                  slots=slots, sem=ctx.BoundedSemaphore(slots))
    return rings


def _reconstruct(msg: Tuple) -> BaseException:
    """Rebuild a child exception from its ("err", ...) report."""
    _, rank, _job_id, payload, rep, tb = msg
    if payload is not None:
        try:
            exc = pickle.loads(payload)
            if isinstance(exc, BaseException):
                return exc
        except Exception:
            pass
    return ProcMPIError(f"rank {rank} failed: {rep}\n{tb}")


def _root_cause(death_errors: List[Optional[BaseException]],
                errors: List[Optional[BaseException]],
                ) -> Optional[BaseException]:
    """Pick the error to re-raise in the parent.

    Root cause first: a hard death, then a real child exception, then a
    ProcMPIError that was not merely an abort release (bad peer, ring
    violation, timeout), and only then the release errors the root cause
    triggered in its peers.
    """
    for exc in death_errors:
        if exc is not None:
            return exc
    for exc in errors:
        if exc is not None and not isinstance(exc, ProcMPIError):
            return exc
    for exc in errors:
        if exc is not None and not getattr(exc, "abort_induced", False):
            return exc
    for exc in errors:
        if exc is not None:
            return exc
    return None


def _check_picklable(fn: Callable, args: Tuple) -> None:
    # Jobs reach the persistent rank processes through a
    # multiprocessing.Queue, which pickles under *every* start method —
    # an unpicklable payload would be dropped by the queue's feeder
    # thread and hang the world, so fail fast here instead.
    try:
        pickle.dumps((fn, args))
    except Exception as exc:
        raise ProcMPIError(
            f"the rank function and its arguments must pickle "
            f"(they are dispatched to the persistent rank processes "
            f"through a queue): {exc!r}; use module-level functions "
            "and picklable specs") from exc


class ProcWorld:
    """A persistent set of rank processes serving a stream of jobs.

    All one-time cost lives in the constructor: the process spawns (the
    expensive part, especially under the spawn start method where every
    rank re-imports the interpreter), the shared abort/barrier/queue
    primitives, and the flow-controlled shared-memory halo rings.
    :meth:`run_job` then dispatches one ``fn(comm, rank, *args)`` to
    every rank and collects the rank-ordered results — the per-job path
    pays **no** setup, which is what the serving layer's warm worker
    pools amortise.

    The ring geometry is fixed at construction (``pair_bytes`` sizes the
    slots); later jobs whose messages fit the slots reuse the rings, and
    oversized or unlisted traffic falls back to pickled envelopes with
    identical semantics, so a world built for one exchange plan safely
    serves any shape-compatible job.

    Failure is crash-only: if any rank raises or dies, the world aborts,
    every rank process exits, :meth:`run_job` re-raises the root cause
    and the world refuses further jobs (:attr:`broken`).  Callers keep a
    warm world for the happy path and replace it wholesale on failure —
    there is no in-place repair of a half-poisoned exchange state.
    """

    def __init__(self, n_ranks: int,
                 timeout: float = DEFAULT_TIMEOUT,
                 start_method: Optional[str] = None,
                 pair_bytes: Optional[Mapping[Tuple[int, int], int]] = None,
                 slots: int = DEFAULT_SLOTS) -> None:
        import multiprocessing as mp

        if n_ranks < 1:
            raise ValueError("need at least one rank")
        if slots < 1:
            raise ValueError("need at least one ring slot")
        method = start_method or default_start_method()
        if method not in mp.get_all_start_methods():
            raise ProcMPIError(
                f"start method {method!r} unavailable on this platform "
                f"(have {mp.get_all_start_methods()}); check "
                "REPRO_PROCMPI_START")
        self.n_ranks = n_ranks
        self.jobs_run = 0
        self._method = method
        self._closed = False
        self._broken = False
        self._next_job = 0
        self._procs: List[Any] = []
        self._pool = ShmPool()
        ctx = mp.get_context(method)
        self._inboxes = [ctx.Queue() for _ in range(n_ranks)]
        self._task_qs = [ctx.Queue() for _ in range(n_ranks)]
        self._result_q = ctx.Queue()
        try:
            rings = _make_rings(ctx, self._pool, pair_bytes, slots, n_ranks)
            self._links = _Links(size=n_ranks, timeout=timeout,
                                 abort=ctx.Event(),
                                 barrier=ctx.Barrier(n_ranks),
                                 inboxes=self._inboxes,
                                 result_q=self._result_q, rings=rings)
            self._procs = [
                ctx.Process(target=_serve_main,
                            args=(r, self._links, self._task_qs[r]),
                            name=f"procmpi-rank-{r}", daemon=True)
                for r in range(n_ranks)]
            for p in self._procs:
                p.start()
            _count_spawns(n_ranks)
        except BaseException:
            self.close()
            raise

    @property
    def start_method(self) -> str:
        """The multiprocessing start method the ranks were spawned with."""
        return self._method

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def broken(self) -> bool:
        """True once a job failed; a broken world refuses further jobs."""
        return self._broken

    def run_job(self, fn: Callable[..., Any], args: Tuple = ()) -> List[Any]:
        """Execute ``fn(comm, rank, *args)`` once on every rank.

        Returns the per-rank return values in rank order.  If any rank
        raises, the world is aborted (peers blocked in receives, sends
        and barriers are released with :class:`ProcMPIError`), the
        *original* exception is re-raised here, and the world is closed
        and marked :attr:`broken`; a rank that dies without reporting
        (killed, segfault) surfaces as a :class:`ProcMPIError` naming
        the exit code.  Either way no shared-memory segment outlives the
        failure and no rank process is left behind.
        """
        if self._closed or self._broken:
            raise ProcMPIError(
                "this world is closed or broken; spawn a new one")
        _check_picklable(fn, args)
        job_id = self._next_job
        self._next_job += 1
        for q in self._task_qs:
            q.put(("job", job_id, fn, args))

        n_ranks = self.n_ranks
        results: List[Any] = [None] * n_ranks
        errors: List[Optional[BaseException]] = [None] * n_ranks
        #: Parent-synthesized errors for ranks that died without
        #: reporting — the root cause, outranking peers' abort errors.
        death_errors: List[Optional[BaseException]] = [None] * n_ranks
        reported = [False] * n_ranks

        def do_abort() -> None:
            self._links.abort.set()
            try:
                self._links.barrier.abort()
            except Exception:  # pragma: no cover
                pass

        def record(msg: Tuple) -> None:
            kind, rank, jid = msg[0], msg[1], msg[2]
            if jid != job_id:  # pragma: no cover - broken worlds never serve
                return
            reported[rank] = True
            if kind == "ok":
                results[rank] = pickle.loads(msg[3])
            else:
                errors[rank] = _reconstruct(msg)
                do_abort()

        # No global wall-clock cap here: `timeout` bounds *blocked*
        # communication inside the ranks (they self-report a
        # ProcMPIError when wedged), never healthy computation — a
        # long-running solve must be allowed to run, exactly as on the
        # thread transport.  The parent only watches for ranks that die
        # without reporting (killed, segfaulted).
        while not all(reported):
            try:
                record(self._result_q.get(timeout=_POLL))
                continue
            except _queue.Empty:
                pass
            for r, p in enumerate(self._procs):
                if not reported[r] and not p.is_alive():
                    # Dead without a report — unless its message is
                    # still in flight in the result pipe.
                    try:
                        record(self._result_q.get(timeout=0.5))
                    except _queue.Empty:
                        reported[r] = True
                        death_errors[r] = ProcMPIError(
                            f"rank {r} died without reporting "
                            f"(exit code {p.exitcode})")
                        do_abort()
                    break
        self.jobs_run += 1
        root = _root_cause(death_errors, errors)
        if root is not None:
            self._broken = True
            self.close()
            raise root
        return results

    def close(self) -> None:
        """Stop, join (or kill) every rank and unlink all segments.

        Idempotent, and safe after any failure mode — the ``finally``
        teardown the one-shot driver always had, now callable.
        """
        if self._closed and not self._procs:
            return
        self._closed = True
        for q in self._task_qs:
            try:
                q.put(("stop",))
            except Exception:  # pragma: no cover - queue already broken
                pass
        procs, self._procs = self._procs, []
        for p in procs:
            p.join(timeout=10.0)
        for p in procs:
            if p.is_alive():  # pragma: no cover - wedged child
                p.terminate()
                p.join(timeout=5.0)
                if p.is_alive():
                    p.kill()
                    p.join(timeout=5.0)
        for q in [self._result_q, *self._inboxes, *self._task_qs]:
            try:
                q.close()
                q.join_thread()
            except Exception:  # pragma: no cover
                pass
        self._pool.cleanup()

    def __enter__(self) -> "ProcWorld":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_procs(n_ranks: int, fn: Callable[..., Any],
              args: Tuple = (),
              timeout: float = DEFAULT_TIMEOUT,
              start_method: Optional[str] = None,
              pair_bytes: Optional[Mapping[Tuple[int, int], int]] = None,
              slots: int = DEFAULT_SLOTS) -> List[Any]:
    """Execute ``fn(comm, rank, *args)`` on ``n_ranks`` OS processes.

    A one-shot :class:`ProcWorld`: spawn, run the single job, tear
    everything down.  Returns the per-rank return values in rank order.
    If any rank raises, the world is aborted (peers blocked in receives,
    sends and barriers are released with :class:`ProcMPIError`) and the
    *original* exception is re-raised in the caller; a rank that dies
    without reporting (killed, segfault) is detected by the parent and
    surfaces as a :class:`ProcMPIError` naming the exit code.  All
    shared-memory segments are unlinked and all rank processes joined or
    terminated before this function returns, success or not.

    Parameters
    ----------
    pair_bytes:
        Optional ``{(src, dst): max_message_bytes}`` map; listed pairs
        get preallocated shared-memory halo rings (``slots`` outstanding
        messages each).  Unlisted traffic uses pickled envelopes.
    start_method:
        ``"fork"``/``"spawn"``/``"forkserver"``; defaults to
        :func:`default_start_method`.  ``fn``, ``args`` and the return
        values must be picklable under *every* start method — jobs and
        results travel queues to the persistent rank processes.
    """
    # run_job's pickle pre-check covers the unpicklable case (at the
    # cost of spawning first on that error path — rare enough not to
    # pay an extra full pickle of the payload on every healthy call).
    world = ProcWorld(n_ranks, timeout=timeout, start_method=start_method,
                      pair_bytes=pair_bytes, slots=slots)
    try:
        return world.run_job(fn, args)
    finally:
        world.close()
