"""Cluster-level performance model: Fig. 6 strong/weak scaling.

Combines the two node-level models with the Hockney network model into
the paper's Sect. 2.3 projection:

* per-process rates come from :func:`~repro.sim.baseline_sim.standard_jacobi_mlups`
  (standard variants, incl. the master-touch "hybrid vector mode"
  pathology) or the calibrated DES
  (:func:`~repro.sim.des_pipeline.simulate_pipelined`) for the pipelined
  variants;
* communication per superstep follows the 3-phase ghost-cell-expansion
  accounting of :class:`~repro.models.halo_model.HaloModel`, generalised
  to non-cubic subdomains on a :func:`balanced_grid` process grid, with
  the paper's ``copy ≈ transfer`` buffer overhead and no
  computation/communication overlap;
* the pipelined variants pay the trapezoid extra work (update ``s``
  covers ``h − s`` extra layers toward every neighbor).

The four measured variants of Fig. 6 are provided by
:func:`fig6_variants`: standard Jacobi at 8 and 1 process-per-node and
the hybrid pipelined code at 1 and 2 PPN (2PPN wins — one process per
socket sidesteps the ccNUMA page-placement penalty, Sect. 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.parameters import PipelineConfig, RelaxedSpec
from ..machine.topology import MachineSpec
from ..models.network import NetworkModel, qdr_infiniband
from ..sim.baseline_sim import standard_jacobi_mlups
from ..sim.des_pipeline import simulate_pipelined

__all__ = ["Fig6Variant", "ScalingPoint", "ClusterModel", "balanced_grid",
           "fig6_variants"]

W = 8  # bytes per double

#: The paper's pipelined block optimum, shared with repro.bench.figures.
_PIPE_BLOCK = (20, 20, 120)


def balanced_grid(n_procs: int) -> Tuple[int, int, int]:
    """The most cubic factorisation ``(a, b, c)`` of ``n_procs``, a<=b<=c.

    Minimises the extent sum, which for a fixed product minimises surface
    (communication) area — the natural process grid for cubic domains.
    """
    if n_procs < 1:
        raise ValueError("need at least one process")
    best: Optional[Tuple[int, int, int]] = None
    for a in range(1, int(round(n_procs ** (1.0 / 3.0))) + 2):
        if n_procs % a:
            continue
        rest = n_procs // a
        b = a
        while b * b <= rest:
            if rest % b == 0:
                cand = (a, b, rest // b)
                if best is None or sum(cand) < sum(best):
                    best = cand
            b += 1
    assert best is not None  # a=1 always divides
    return best


@dataclass(frozen=True)
class Fig6Variant:
    """One measured curve of Fig. 6.

    ``halo`` is the ghost width per exchange: 1 for standard Jacobi,
    ``n·t·T`` for the hybrid pipelined code (the full pass).
    """

    name: str
    mode: str                 # "standard" | "pipelined"
    ppn: int                  # MPI processes per node
    threads_per_process: int
    placement: str            # NUMA page placement of the node model
    teams: int = 1            # pipelined only: teams per process
    T: int = 2                # pipelined only: updates per thread
    halo: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("standard", "pipelined"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.ppn < 1 or self.threads_per_process < 1:
            raise ValueError("ppn and threads_per_process must be >= 1")

    def pipeline_config(self) -> PipelineConfig:
        """The per-process pipelined configuration (paper's optimum)."""
        return PipelineConfig(teams=self.teams, threads_per_team=4,
                              updates_per_thread=self.T,
                              block_size=_PIPE_BLOCK,
                              sync=RelaxedSpec(1, 4), storage="compressed")


def fig6_variants() -> Tuple[Fig6Variant, ...]:
    """The four measured Fig. 6 variants, standard first, pipelined last."""
    return (
        Fig6Variant("standard 8PPN", "standard", ppn=8, threads_per_process=1,
                    placement="first_touch", halo=1),
        Fig6Variant("standard 1PPN", "standard", ppn=1, threads_per_process=8,
                    placement="master_touch", halo=1),
        Fig6Variant("pipelined 1PPN", "pipelined", ppn=1,
                    threads_per_process=8, placement="round_robin",
                    teams=2, T=2, halo=16),
        Fig6Variant("pipelined 2PPN", "pipelined", ppn=2,
                    threads_per_process=4, placement="first_touch",
                    teams=1, T=2, halo=8),
    )


@dataclass(frozen=True)
class ScalingPoint:
    """One (variant, node count) evaluation of the cluster model."""

    nodes: int
    processes: int
    glups: float
    compute_time: float       # per superstep, incl. trapezoid extra work
    comm_time: float          # per superstep, 3-phase exchange
    useful_time: float        # core updates alone at the process rate
    subdomain: Tuple[float, float, float]

    @property
    def efficiency(self) -> float:
        """Useful-update fraction of the superstep (1 = no overhead)."""
        total = self.compute_time + self.comm_time
        return 0.0 if total <= 0 else self.useful_time / total


class ClusterModel:
    """Strong/weak scaling projection on the paper's QDR-IB cluster.

    Parameters
    ----------
    machine:
        Node description (the paper's Nehalem EP preset).
    network:
        Hockney model; defaults to QDR InfiniBand with the paper's
        profiling result that buffer copies cost as much as the wire
        (``copy_factor=1``) and no computation/communication overlap.
    sim_shape:
        Problem size for the DES runs that calibrate the pipelined
        per-process rates (rates are size-stable above ~250^3; tests use
        200^3 for speed).
    domain:
        Edge length of the scaling problem: ``domain^3`` total for strong
        scaling, ``domain^3`` *per process* for weak scaling (the bench
        banner's "600^3 strong / 600^3-per-process weak").
    """

    def __init__(self, machine: MachineSpec,
                 network: Optional[NetworkModel] = None,
                 sim_shape: Sequence[int] = (300, 300, 300),
                 domain: int = 600, seed: int = 0) -> None:
        self.machine = machine
        self.network = network or qdr_infiniband(copy_factor=1.0)
        self.sim_shape = tuple(int(s) for s in sim_shape)
        self.domain = int(domain)
        self.seed = seed
        self._rates: Dict[Fig6Variant, float] = {}

    # -- node-level rates --------------------------------------------------------

    def process_rate(self, variant: Fig6Variant) -> float:
        """MLUP/s of one process of ``variant`` on this machine (cached).

        Pipelined rates come from one DES run each; caching keeps a full
        Fig. 6 sweep at four node-model evaluations total.
        """
        if variant not in self._rates:
            if variant.mode == "standard":
                node = standard_jacobi_mlups(
                    self.machine,
                    threads=variant.ppn * variant.threads_per_process,
                    placement=variant.placement).mlups
                rate = node / variant.ppn
            else:
                rate = simulate_pipelined(
                    self.machine, variant.pipeline_config(), self.sim_shape,
                    placement=variant.placement, seed=self.seed).mlups
            self._rates[variant] = rate
        return self._rates[variant]

    def node_rate(self, variant: Fig6Variant) -> float:
        """MLUP/s of one full node (all its processes)."""
        return self.process_rate(variant) * variant.ppn

    # -- cluster-level evaluation -----------------------------------------------

    def evaluate(self, variant: Fig6Variant, nodes: int,
                 scaling: str = "strong") -> ScalingPoint:
        """One point of a Fig. 6 curve.

        Models the representative *interior* process: trapezoid growth and
        exchange happen toward every dimension the process grid actually
        cuts.  No overlap: a superstep is (3-phase exchange, then h
        updates), serialised.
        """
        if scaling not in ("strong", "weak"):
            raise ValueError(
                f"unknown scaling {scaling!r}; choose 'strong' or 'weak'")
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        P = nodes * variant.ppn
        pgrid = balanced_grid(P)
        if scaling == "strong":
            sub = tuple(self.domain / pgrid[d] for d in range(3))
        else:
            sub = (float(self.domain),) * 3
        h = variant.halo

        bulk = 0.0
        for s in range(1, h + 1):
            vol = 1.0
            for d in range(3):
                vol *= sub[d] + (2 * (h - s) if pgrid[d] > 1 else 0)
            bulk += vol
        comm = 0.0
        for d in range(3):
            if pgrid[d] == 1:
                continue
            ext = 1.0
            for dd in range(3):
                if dd == d:
                    continue
                # Ghost-cell expansion: already-exchanged dims ride along.
                ext *= sub[dd] + (2 * h if dd < d and pgrid[dd] > 1 else 0)
            comm += self.network.exchange_time(h * ext * W, messages=2)

        rate = self.process_rate(variant) * 1e6
        useful = h * sub[0] * sub[1] * sub[2]
        compute = bulk / rate
        total = compute + comm
        glups = P * useful / total / 1e9
        return ScalingPoint(nodes=nodes, processes=P, glups=glups,
                            compute_time=compute, comm_time=comm,
                            useful_time=useful / rate, subdomain=sub)

    def series(self, variant: Fig6Variant,
               node_counts: Sequence[int] = (1, 8, 27, 64),
               scaling: str = "strong") -> List[ScalingPoint]:
        """One full curve of Fig. 6."""
        return [self.evaluate(variant, n, scaling=scaling)
                for n in node_counts]

    def ideal(self, variant: Fig6Variant,
              node_counts: Sequence[int] = (1, 8, 27, 64)) -> List[float]:
        """Ideal (communication-free) scaling reference, in GLUP/s."""
        base = self.node_rate(variant)
        return [base * n / 1e3 for n in node_counts]
