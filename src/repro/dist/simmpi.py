"""Thread-backed simulated MPI: run N ranks as threads in one process.

The distributed rail needs real concurrent ranks — the 3-phase exchange
interleaves sends and receives across peers — but demanding an MPI
installation would make the test-suite unrunnable on most machines.
``run_ranks`` instead executes one Python thread per rank; NumPy releases
the GIL inside kernels, so ranks genuinely overlap, and the semantics
match the paper's MPI usage where it matters:

* **copy-on-send** — ``send`` snapshots the buffer, the sender may reuse
  it immediately (MPI buffered mode, which the paper's code relies on for
  the consecutive per-dimension exchanges);
* **source-ordered delivery** — messages between one (src, dst) pair
  arrive in send order;
* **fail-fast collectives** — when any rank raises, the others are
  released from barriers and receives with :class:`SimMPIError` instead
  of hanging, and ``run_ranks`` re-raises the original exception.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from .comm import Comm, snapshot as _snapshot

__all__ = ["SimMPIError", "RankComm", "run_ranks"]

#: How long a blocked receive/barrier waits before concluding the run is
#: wedged (a deadlocked exchange or a crashed peer).
DEFAULT_TIMEOUT = 120.0
_POLL = 0.05


class SimMPIError(RuntimeError):
    """A simulated-MPI failure: timeout, aborted peer, or bad rank."""


class _World:
    """Shared state of one ``run_ranks`` invocation."""

    def __init__(self, size: int, timeout: float) -> None:
        self.size = size
        self.timeout = timeout
        self.abort = threading.Event()
        self.barrier = threading.Barrier(size)
        # Separate point-to-point and collective channels so a gather can
        # never consume a ghost-exchange message (MPI "tags", minimally).
        self.p2p: Dict[Tuple[int, int], queue.Queue] = {}
        self.coll: Dict[Tuple[int, int], queue.Queue] = {}
        for s in range(size):
            for d in range(size):
                self.p2p[(s, d)] = queue.Queue()
                self.coll[(s, d)] = queue.Queue()

    def do_abort(self) -> None:
        self.abort.set()
        self.barrier.abort()


class RankComm(Comm):
    """One rank's endpoint in a simulated world (see :class:`Comm`)."""

    def __init__(self, rank: int, world: _World) -> None:
        self.rank = int(rank)
        self.size = world.size
        self._world = world

    # -- internals ---------------------------------------------------------------

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise SimMPIError(f"rank {peer} outside world of size {self.size}")
        if peer == self.rank:
            raise SimMPIError("self-messaging is not supported")

    def _get(self, q: queue.Queue, what: str) -> Any:
        waited = 0.0
        while True:
            if self._world.abort.is_set():
                raise SimMPIError(f"{what} aborted: another rank failed")
            try:
                return q.get(timeout=_POLL)
            except queue.Empty:
                waited += _POLL
                if waited >= self._world.timeout:
                    raise SimMPIError(
                        f"rank {self.rank}: {what} timed out after "
                        f"{self._world.timeout:.0f}s (deadlocked exchange?)"
                    ) from None

    # -- point-to-point ----------------------------------------------------------

    def send(self, dest: int, data: Any) -> None:
        """Buffered send: the message is a snapshot of ``data``."""
        self._check_peer(dest)
        self._world.p2p[(self.rank, dest)].put(_snapshot(data))

    def recv(self, src: int) -> Any:
        """Blocking receive of the next message from ``src``."""
        self._check_peer(src)
        return self._get(self._world.p2p[(src, self.rank)],
                         f"recv from rank {src}")

    def sendrecv(self, dest: int, data: Any, src: int) -> Any:
        """Exchange: buffered send to ``dest``, then receive from ``src``.

        Because sends are buffered this cannot deadlock even when every
        rank calls it simultaneously (the ring-shift pattern).
        """
        self.send(dest, data)
        return self.recv(src)

    # -- collectives -------------------------------------------------------------

    def barrier(self) -> None:
        """Synchronise all ranks; raises :class:`SimMPIError` on abort."""
        try:
            self._world.barrier.wait(timeout=self._world.timeout)
        except threading.BrokenBarrierError:
            raise SimMPIError(
                f"rank {self.rank}: barrier broken (peer failed or timeout)"
            ) from None

    def gather(self, value: Any, root: int = 0) -> Optional[List[Any]]:
        """Rank-ordered list of everyone's ``value`` at ``root``, else None."""
        if self.rank == root:
            out: List[Any] = []
            for src in range(self.size):
                if src == root:
                    out.append(_snapshot(value))
                else:
                    out.append(self._get(self._world.coll[(src, root)],
                                         f"gather from rank {src}"))
            return out
        self._world.coll[(self.rank, root)].put(_snapshot(value))
        return None

    def _bcast(self, value: Any, root: int) -> Any:
        if self.rank == root:
            for dst in range(self.size):
                if dst != root:
                    self._world.coll[(root, dst)].put(_snapshot(value))
            return value
        return self._get(self._world.coll[(root, self.rank)],
                         f"bcast from rank {root}")

    def allreduce_max(self, value: float) -> float:
        """Global maximum, available on every rank (gather + broadcast)."""
        gathered = self.gather(value, root=0)
        result = max(gathered) if self.rank == 0 else None
        return self._bcast(result, root=0)


def run_ranks(n_ranks: int, fn: Callable[[RankComm, int], Any],
              timeout: float = DEFAULT_TIMEOUT) -> List[Any]:
    """Execute ``fn(comm, rank)`` on ``n_ranks`` concurrent thread-ranks.

    Returns the per-rank return values in rank order.  If any rank
    raises, the world is aborted (peers blocked in ``recv``/``barrier``
    are released with :class:`SimMPIError`) and the *original* exception
    is re-raised in the caller.
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    world = _World(n_ranks, timeout)
    results: List[Any] = [None] * n_ranks
    errors: List[Optional[BaseException]] = [None] * n_ranks

    def runner(rank: int) -> None:
        try:
            results[rank] = fn(RankComm(rank, world), rank)
        except BaseException as exc:  # noqa: BLE001 — must reach the caller
            errors[rank] = exc
            world.do_abort()

    threads = [threading.Thread(target=runner, args=(r,),
                                name=f"simmpi-rank-{r}", daemon=True)
               for r in range(n_ranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Prefer the root cause over the SimMPIErrors it triggered in peers.
    for exc in errors:
        if exc is not None and not isinstance(exc, SimMPIError):
            raise exc
    for exc in errors:
        if exc is not None:
            raise exc
    return results
