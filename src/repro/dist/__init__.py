"""Distributed-memory rail (Sect. 2 of the paper).

Built from five pieces, bottom-up:

* :mod:`~repro.dist.decomp` — Cartesian rank decomposition with
  core/stored (ghost-extended) boxes;
* :mod:`~repro.dist.exchange` — the 3-phase ghost-cell-expansion
  exchange geometry (Fig. 4): six messages carry faces, edges *and*
  corners of an ``h``-layer halo;
* :mod:`~repro.dist.comm` / :mod:`~repro.dist.simmpi` /
  :mod:`~repro.dist.procmpi` — the transport protocol and its two
  implementations: thread-backed simulated MPI and true multiprocess
  ranks over :mod:`~repro.dist.shm` shared-memory blocks (a real
  ``mpi4py`` adapter slots into the same protocol);
* :mod:`~repro.dist.solver` — the multi-halo Jacobi and hybrid pipelined
  solvers, transport-agnostic, returning the unified
  :class:`~repro.core.pipeline.SolveResult`;
* :mod:`~repro.dist.cluster_sim` — the Fig. 6 strong/weak cluster
  scaling model on top of the node models and the Hockney network.
"""

from .comm import Comm, MPI4PyComm
from .decomp import CartesianDecomposition, RankGeometry
from .exchange import exchange_plan, plan_bytes
from .procmpi import ProcComm, ProcMPIError, ProcWorld, process_spawns, run_procs
from .shm import ShmPool, live_segments, segment_creates
from .simmpi import RankComm, SimMPIError, run_ranks
from .solver import (
    TRANSPORTS,
    ProcSolverSession,
    distributed_jacobi_pipelined,
    distributed_jacobi_sweeps,
)
from .cluster_sim import (
    ClusterModel,
    Fig6Variant,
    ScalingPoint,
    balanced_grid,
    fig6_variants,
)

__all__ = [
    "Comm",
    "MPI4PyComm",
    "CartesianDecomposition",
    "RankGeometry",
    "exchange_plan",
    "plan_bytes",
    "RankComm",
    "SimMPIError",
    "run_ranks",
    "ProcComm",
    "ProcMPIError",
    "ProcWorld",
    "ProcSolverSession",
    "process_spawns",
    "run_procs",
    "ShmPool",
    "live_segments",
    "segment_creates",
    "TRANSPORTS",
    "distributed_jacobi_sweeps",
    "distributed_jacobi_pipelined",
    "ClusterModel",
    "Fig6Variant",
    "ScalingPoint",
    "balanced_grid",
    "fig6_variants",
]
