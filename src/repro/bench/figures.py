"""Per-figure data-series generators (the experiment index of DESIGN.md).

Each ``fig*`` function returns plain data structures that the matching
``benchmarks/bench_*.py`` renders; keeping generation separate from the
pytest-benchmark wrappers makes the series unit-testable.  The
``repro.perf`` scenario registry wraps these same generators per suite
scale (``fig3_left@quick`` etc.), and the shape assertions live in the
bench wrappers themselves (see EXPERIMENTS.md for the full map).

All pipelined performance numbers come from the calibrated DES; the
simulation problem size defaults to 300^3 (same block geometry as the
paper's 600^3, quarter the wall-clock) — MLUP/s rates are size-stable
above ~250^3, which ``tests/test_sim_pipeline.py`` asserts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.parameters import BarrierSpec, PipelineConfig, RelaxedSpec, SyncSpec
from ..machine.presets import nehalem_ep
from ..machine.topology import MachineSpec
from ..models.halo_model import HaloModel, fig5_parameters
from ..models.pipeline_model import PipelineModel, nehalem_speedup_formula
from ..sim.baseline_sim import standard_jacobi_mlups
from ..sim.costmodel import CodeBalance
from ..sim.des_pipeline import simulate_pipelined

__all__ = [
    "DEFAULT_SIM_SHAPE",
    "fig3_left",
    "fig3_right",
    "fig5_series",
    "fig6_series",
    "model_validation",
    "ablation_team_delay",
    "ablation_block_size",
    "ablation_nt_stores",
    "pipeline_cfg",
]

DEFAULT_SIM_SHAPE = (300, 300, 300)
BLOCK = (20, 20, 120)  # the paper's pipelined optimum (b_x ≈ 120)


def pipeline_cfg(teams: int, sync: SyncSpec, T: int = 2,
                 block: Tuple[int, int, int] = BLOCK,
                 storage: str = "compressed") -> PipelineConfig:
    """The paper's pipelined setup: t=4 threads per team (full socket)."""
    return PipelineConfig(teams=teams, threads_per_team=4,
                          updates_per_thread=T, block_size=block,
                          sync=sync, storage=storage)


def fig3_left(machine: Optional[MachineSpec] = None,
              shape: Sequence[int] = DEFAULT_SIM_SHAPE,
              seed: int = 0) -> Dict[str, Dict[str, float]]:
    """Fig. 3 (left): socket & node MLUP/s for the measured variants.

    Returns ``{"socket": {variant: mlups}, "node": {...}}`` including the
    Eq. 5 model markers for T=1 and T=2.
    """
    m = machine or nehalem_ep()
    out: Dict[str, Dict[str, float]] = {}
    for label, teams in (("socket", 1), ("node", 2)):
        std = standard_jacobi_mlups(m, threads=4 * teams).mlups
        vals = {"standard Jacobi": std}
        variants = [
            ("pipeline w/ barrier", BarrierSpec(), 2),
            ("pipeline relaxed d_u=1 (lockstep)", RelaxedSpec(1, 1), 2),
            ("pipeline relaxed d_u=4", RelaxedSpec(1, 4), 2),
            ("pipeline relaxed T=1", RelaxedSpec(1, 4), 1),
        ]
        for name, sync, T in variants:
            rep = simulate_pipelined(m, pipeline_cfg(teams, sync, T), shape,
                                     seed=seed)
            vals[name] = rep.mlups
        model = PipelineModel.from_machine(m)
        vals["model T=1"] = nehalem_speedup_formula(1) * std
        vals["model T=2"] = nehalem_speedup_formula(2) * std
        vals["model T=1 (exact Eq.5)"] = model.speedup(4, 1) * std
        out[label] = vals
    return out


def fig3_right(machine: Optional[MachineSpec] = None,
               shape: Sequence[int] = DEFAULT_SIM_SHAPE,
               loosenesses: Sequence[int] = (0, 1, 2, 3, 4, 5),
               seed: int = 0) -> Dict[str, List[Tuple[int, float]]]:
    """Fig. 3 (right): performance vs pipeline looseness ``d_u - d_l``."""
    m = machine or nehalem_ep()
    out: Dict[str, List[Tuple[int, float]]] = {}
    for label, teams in (("socket", 1), ("node", 2)):
        series = []
        for loose in loosenesses:
            sync = RelaxedSpec(1, 1 + loose)
            rep = simulate_pipelined(m, pipeline_cfg(teams, sync), shape,
                                     seed=seed)
            series.append((loose, rep.mlups / 1e3))  # GLUP/s like the paper
        out[label] = series
    return out


def fig5_series(h_values: Sequence[int] = (2, 4, 8, 16, 32),
                L_values: Sequence[int] = (2, 3, 5, 8, 12, 20, 32, 50, 80,
                                           128, 200, 320),
                expanded_messages: bool = False,
                ) -> Dict[str, Dict[int, List[Tuple[int, float]]]]:
    """Fig. 5: multi-layer halo advantage and efficiency inset.

    ``expanded_messages=False`` reproduces the paper's own accounting
    (message growth from ghost expansion neglected); the bench prints the
    self-consistent expanded variant alongside.
    """
    base = fig5_parameters()
    hm = HaloModel(node_lups=base.node_lups, network=base.network,
                   expanded_messages=expanded_messages)
    advantage = {h: hm.advantage_series(L_values, h) for h in h_values}
    inset = {h: hm.efficiency_series(L_values, h) for h in (2, 32)}
    return {"advantage": advantage, "efficiency": inset}


def fig6_series(machine: Optional[MachineSpec] = None,
                node_counts: Sequence[int] = (1, 8, 27, 64),
                ) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    """Fig. 6: strong and weak scaling for the four measured variants."""
    # Imported lazily: fig6 is the only series that needs the distributed
    # rail, and the figure-independent bench utilities should not
    # hard-fail if repro.dist (or a future real-MPI dep) is unavailable.
    from ..dist.cluster_sim import ClusterModel, fig6_variants

    m = machine or nehalem_ep()
    cm = ClusterModel(m)
    out: Dict[str, Dict[str, List[Tuple[int, float]]]] = {
        "strong": {}, "weak": {}}
    for v in fig6_variants():
        for scaling in ("strong", "weak"):
            pts = cm.series(v, node_counts, scaling=scaling)
            out[scaling][v.name] = [(p.nodes, p.glups) for p in pts]
    ideal_std = cm.ideal(fig6_variants()[0], node_counts)
    ideal_pipe = cm.ideal(fig6_variants()[3], node_counts)
    out["strong"]["ideal standard"] = list(zip(node_counts, ideal_std))
    out["strong"]["ideal pipelined"] = list(zip(node_counts, ideal_pipe))
    return out


def model_validation(machine: Optional[MachineSpec] = None,
                     shape: Sequence[int] = DEFAULT_SIM_SHAPE,
                     T_values: Sequence[int] = (1, 2, 4),
                     ) -> List[Dict[str, float]]:
    """E3: Eq. 5 prediction vs simulation per T (model fails at T >= 2)."""
    m = machine or nehalem_ep()
    std = standard_jacobi_mlups(m, threads=4).mlups
    model = PipelineModel.from_machine(m)
    rows = []
    for T in T_values:
        sim = simulate_pipelined(m, pipeline_cfg(1, RelaxedSpec(1, 4), T),
                                 shape).mlups
        rows.append({
            "T": float(T),
            "model_speedup": model.speedup(4, T),
            "formula_16T": nehalem_speedup_formula(T),
            "model_mlups": model.speedup(4, T) * std,
            "sim_mlups": sim,
            "sim_speedup": sim / std,
        })
    return rows


def ablation_team_delay(machine: Optional[MachineSpec] = None,
                        shape: Sequence[int] = DEFAULT_SIM_SHAPE,
                        delays: Sequence[int] = (0, 2, 4, 8, 16),
                        ) -> List[Tuple[int, float]]:
    """E7: team delay ``d_t`` sweep (paper: ≈3 % improvement at d_t=8)."""
    m = machine or nehalem_ep()
    out = []
    for dt in delays:
        rep = simulate_pipelined(
            m, pipeline_cfg(2, RelaxedSpec(1, 4, team_delay=dt)), shape)
        out.append((dt, rep.mlups))
    return out


def ablation_block_size(machine: Optional[MachineSpec] = None,
                        shape: Sequence[int] = DEFAULT_SIM_SHAPE,
                        bx_values: Sequence[int] = (30, 60, 120, 300),
                        ) -> List[Tuple[int, float, int]]:
    """E8: inner block length sweep; returns (b_x, mlups, reloads).

    Large blocks with loose pipelines overflow the shared cache —
    "d_u and the blocksize are strongly coupled".
    """
    m = machine or nehalem_ep()
    out = []
    for bx in bx_values:
        cfg = pipeline_cfg(1, RelaxedSpec(1, 4), block=(20, 20, bx))
        rep = simulate_pipelined(m, cfg, shape)
        out.append((bx, rep.mlups, rep.reloads))
    return out


def ablation_nt_stores(machine: Optional[MachineSpec] = None,
                       shape: Sequence[int] = DEFAULT_SIM_SHAPE,
                       ) -> Dict[str, float]:
    """E9: NT stores & storage scheme under temporal blocking.

    NT stores leak every update's stores to memory ("unnecessary and even
    counterproductive"); the compressed grid halves the cache footprint.
    """
    m = machine or nehalem_ep()
    out = {}
    for label, storage, nt in (("compressed", "compressed", False),
                               ("two-grid", "twogrid", False),
                               ("two-grid + NT stores", "twogrid", True)):
        cfg = pipeline_cfg(1, RelaxedSpec(1, 4), storage=storage)
        bal = CodeBalance.pipelined(storage, nt_stores=nt)
        rep = simulate_pipelined(m, cfg, shape, balance=bal)
        out[label] = rep.mlups
    return out
