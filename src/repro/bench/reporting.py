"""ASCII reporting helpers for the benchmark harness.

Every ``benchmarks/bench_fig*.py`` regenerates one figure's data and
prints it as aligned text tables/series — the reproducible-artifact
equivalent of the paper's plots.  These helpers keep the output format
consistent across benches and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["format_table", "format_series", "banner", "ratio"]


def banner(title: str, width: int = 78) -> str:
    """A section banner used at the top of each bench's output."""
    bar = "=" * width
    return f"{bar}\n{title}\n{bar}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None, floatfmt: str = "10.1f") -> str:
    """Fixed-width table; floats formatted with ``floatfmt``."""
    str_rows: List[List[str]] = []
    for row in rows:
        out = []
        for v in row:
            if isinstance(v, float):
                out.append(format(v, floatfmt).strip())
            else:
                out.append(str(v))
        str_rows.append(out)
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) if _numeric(cell)
                               else cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _numeric(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False


def format_series(name: str, points: Sequence[Tuple[object, float]],
                  xlabel: str = "x", ylabel: str = "y",
                  floatfmt: str = ".3f") -> str:
    """A labelled x/y series (one figure line) as two aligned columns."""
    lines = [f"{name}  ({xlabel} -> {ylabel})"]
    for x, y in points:
        lines.append(f"  {str(x):>8s}  {format(y, floatfmt)}")
    return "\n".join(lines)


def ratio(a: float, b: float) -> float:
    """Safe ratio for speedup columns (NaN when the base is zero)."""
    return a / b if b else float("nan")
