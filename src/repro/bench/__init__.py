"""Benchmark harness: per-figure data generators + ASCII reporting."""

from .reporting import banner, format_series, format_table, ratio
from .figures import (
    DEFAULT_SIM_SHAPE,
    ablation_block_size,
    ablation_nt_stores,
    ablation_team_delay,
    fig3_left,
    fig3_right,
    fig5_series,
    fig6_series,
    model_validation,
    pipeline_cfg,
)

__all__ = [
    "banner",
    "format_table",
    "format_series",
    "ratio",
    "DEFAULT_SIM_SHAPE",
    "fig3_left",
    "fig3_right",
    "fig5_series",
    "fig6_series",
    "model_validation",
    "ablation_team_delay",
    "ablation_block_size",
    "ablation_nt_stores",
    "pipeline_cfg",
]
