"""Machine description: sockets, cache groups, cores, bandwidths.

The paper's performance arguments are entirely about the *bandwidth
topology* of a multicore node: per-socket memory bandwidth ``Ms`` that a
single thread cannot saturate (``Ms,1 < Ms``), a shared outer-level cache
per socket with aggregate bandwidth ``Mc``, and synchronisation costs that
grow when crossing sockets.  :class:`MachineSpec` captures exactly those
quantities; the presets in :mod:`repro.machine.presets` fill in the
paper's Nehalem EP numbers.

All bandwidths are in bytes/second, times in seconds, sizes in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["CacheLevel", "MachineSpec", "GB", "MB", "KB", "US"]

KB = 1024
MB = 1024 * KB
GB = 1e9  # bandwidth vendors use decimal GB/s; we follow the paper
US = 1e-6


@dataclass(frozen=True)
class CacheLevel:
    """One cache level of the hierarchy.

    ``shared_by`` is the number of cores forming the cache group at this
    level (1 = private).  ``bandwidth`` is the aggregate sustainable
    bandwidth for STREAM-COPY-like kernels, the paper's ``Mc`` for the
    outer level.
    """

    name: str
    size: int
    shared_by: int
    bandwidth: float

    def __post_init__(self) -> None:
        if self.size <= 0 or self.shared_by <= 0 or self.bandwidth <= 0:
            raise ValueError(f"invalid cache level {self}")


@dataclass(frozen=True)
class MachineSpec:
    """A shared-memory node in the paper's bandwidth-topology terms.

    Parameters
    ----------
    sockets, cores_per_socket:
        ccNUMA layout; one cache group (outer-level shared cache) per
        socket, as on Nehalem EP.
    clock_hz:
        Core clock; used to convert cycle-denominated costs.
    caches:
        Hierarchy from innermost to outermost; the last level must be the
        socket-shared cache.
    mem_bw_socket:
        ``Ms`` — saturated per-socket STREAM COPY bandwidth (NT stores).
    mem_bw_single:
        ``Ms,1`` — single-threaded STREAM COPY bandwidth ("a single stream
        is not able to saturate the memory bus", Sect. 1.4).
    remote_bw:
        Inter-socket transfer bandwidth (QPI-like), for blocks handed from
        one team's cache to the next.
    core_mlups:
        In-cache stencil update rate of one core in lattice-site updates
        per second; models the decoupled regime where "in-cache
        performance for stencil codes is not dominated by bandwidth
        effects alone" (Sect. 1.5, citing [8]).
    barrier_base_cycles, barrier_cycles_per_thread, barrier_socket_factor:
        Cost model for a global barrier: hundreds to thousands of cycles
        depending on topology (Sect. 1.3, citing [8]).
    coherence_latency_intra, coherence_latency_inter:
        Time for a progress-counter update to become visible to a spinning
        neighbor on the same / another socket.
    block_overhead:
        Fixed per-block-operation software overhead (loop setup, condition
        checks).
    jitter_sigma:
        Log-normal sigma of block-operation service-time jitter (memory
        contention bursts, prefetch hiccups).  This drives the convoy
        penalty of tightly coupled pipelines that Fig. 3 (right) shows;
        see DESIGN.md §2.
    lockstep_efficiency:
        In-cache execution efficiency when a pipeline runs in rigid
        lockstep (``d_l = d_u``): spinning on neighbor counters mid-stream
        defeats the hardware prefetchers, degrading the core's effective
        update rate.  1.0 disables the effect.
    """

    name: str
    sockets: int
    cores_per_socket: int
    clock_hz: float
    caches: Tuple[CacheLevel, ...]
    mem_bw_socket: float
    mem_bw_single: float
    remote_bw: float
    core_mlups: float
    barrier_base_cycles: float = 600.0
    barrier_cycles_per_thread: float = 100.0
    barrier_socket_factor: float = 4.0
    coherence_latency_intra: float = 0.08 * US
    coherence_latency_inter: float = 0.35 * US
    block_overhead: float = 0.5 * US
    jitter_sigma: float = 0.55
    stream_efficiency: float = 0.90
    lockstep_efficiency: float = 0.78

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ValueError("need at least one socket and one core")
        if not self.caches:
            raise ValueError("need at least one cache level")
        if self.mem_bw_single > self.mem_bw_socket:
            raise ValueError("Ms,1 cannot exceed Ms")
        if self.caches[-1].shared_by != self.cores_per_socket:
            raise ValueError(
                "outer cache level must be shared by the whole socket "
                "(the paper's cache group)"
            )

    # -- derived -------------------------------------------------------------

    @property
    def total_cores(self) -> int:
        """Cores in the node."""
        return self.sockets * self.cores_per_socket

    @property
    def shared_cache(self) -> CacheLevel:
        """The outer-level (socket-shared) cache — the paper's cache group."""
        return self.caches[-1]

    @property
    def mem_bw_node(self) -> float:
        """Aggregate node memory bandwidth (all sockets streaming)."""
        return self.mem_bw_socket * self.sockets

    @property
    def bandwidth_starvation(self) -> float:
        """``Ms / Ms,1`` — how far one core is from saturating the bus.

        The paper: a value near 1 means bandwidth scales with cores and
        temporal blocking cannot help; Nehalem is ≈ 2.
        """
        return self.mem_bw_socket / self.mem_bw_single

    @property
    def cache_memory_ratio(self) -> float:
        """``Mc / Ms`` — ceiling of the temporal-blocking speedup."""
        return self.shared_cache.bandwidth / self.mem_bw_socket

    def core_socket(self, core: int) -> int:
        """Socket index of a (node-global) core index."""
        if not 0 <= core < self.total_cores:
            raise IndexError(f"core {core} out of range")
        return core // self.cores_per_socket

    def barrier_cost(self, n_threads: int, n_sockets: int) -> float:
        """Seconds for a global barrier across ``n_threads`` threads.

        Grows linearly in thread count and jumps by ``barrier_socket_factor``
        when the barrier spans sockets, reflecting that "a barrier may cost
        hundreds if not thousands of cycles" (Sect. 1.3).
        """
        cycles = self.barrier_base_cycles + self.barrier_cycles_per_thread * n_threads
        if n_sockets > 1:
            cycles *= self.barrier_socket_factor
        return cycles / self.clock_hz

    def coherence_latency(self, socket_a: int, socket_b: int) -> float:
        """Counter-visibility latency between two cores' sockets."""
        return (self.coherence_latency_intra if socket_a == socket_b
                else self.coherence_latency_inter)

    def describe(self) -> str:
        """One-line summary used in bench output headers."""
        c = self.shared_cache
        return (
            f"{self.name}: {self.sockets}x{self.cores_per_socket} cores @ "
            f"{self.clock_hz / 1e9:.2f} GHz, {c.name} {c.size // MB} MB "
            f"shared/{c.shared_by}, Ms={self.mem_bw_socket / GB:.1f} GB/s, "
            f"Ms1={self.mem_bw_single / GB:.1f} GB/s, "
            f"Mc={c.bandwidth / GB:.1f} GB/s"
        )
