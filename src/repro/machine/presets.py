"""Machine presets: the paper's test bed and contrasting designs.

The Nehalem EP numbers are taken directly from the paper (Sect. 1.1, 1.4):
Xeon 5550, 2 sockets x 4 cores at 2.66 GHz, 8 MB shared L3 per socket,
``Ms = 18.5`` GB/s per socket with non-temporal stores, ``Ms,1 ≈ 10`` GB/s
(so ``Ms/Ms,1 ≈ 2``) and ``Mc ≈ 8 · Ms,1 = 80`` GB/s.  The Core 2 preset
models the older, more bandwidth-starved design the paper says profits
more from temporal blocking; the many-core preset extrapolates the
paper's outlook ("future multicore processors ... can be expected to be
less balanced").
"""

from __future__ import annotations

from .topology import CacheLevel, GB, KB, MB, MachineSpec

__all__ = ["nehalem_ep", "core2_quad", "future_manycore", "PRESETS", "get_preset"]


def nehalem_ep() -> MachineSpec:
    """The paper's test system: dual-socket Intel Xeon 5550 (Nehalem EP)."""
    return MachineSpec(
        name="Nehalem EP (Xeon 5550)",
        sockets=2,
        cores_per_socket=4,
        clock_hz=2.66e9,
        caches=(
            CacheLevel("L1D", 32 * KB, 1, 300 * GB),
            CacheLevel("L2", 256 * KB, 1, 150 * GB),
            CacheLevel("L3", 8 * MB, 4, 80 * GB),   # Mc ≈ 8 * Ms,1
        ),
        mem_bw_socket=18.5 * GB,   # Ms (STREAM COPY, NT stores)
        mem_bw_single=10.0 * GB,   # Ms,1
        remote_bw=11.0 * GB,       # QPI-class inter-socket transfer
        core_mlups=520e6,          # in-cache Jacobi rate per core (calibrated)
        jitter_sigma=0.42,         # calibrated: see EXPERIMENTS.md
    )


def core2_quad() -> MachineSpec:
    """A Core 2 era node: strongly bandwidth-starved (Ms/Ms,1 ≈ 1.1).

    On such designs "the potential gain ... is limited" does *not* apply:
    the paper notes the older Core 2 designs profit more from temporal
    blocking because adding cores buys almost no extra memory bandwidth.
    """
    return MachineSpec(
        name="Core 2 quad (Harpertown-like)",
        sockets=2,
        cores_per_socket=4,
        clock_hz=2.83e9,
        caches=(
            CacheLevel("L1D", 32 * KB, 1, 250 * GB),
            CacheLevel("L2", 6 * MB, 2, 60 * GB),
            CacheLevel("L2s", 12 * MB, 4, 60 * GB),  # treat paired L2 as group
        ),
        mem_bw_socket=6.5 * GB,
        mem_bw_single=5.8 * GB,    # one core nearly saturates the FSB
        remote_bw=5.0 * GB,
        core_mlups=350e6,
        jitter_sigma=0.5,
    )


def future_manycore() -> MachineSpec:
    """A hypothetical many-core chip per the paper's outlook.

    Many cores behind one memory interface: extreme bandwidth starvation
    (``Ms/Ms,1`` small per-core share), large shared cache bandwidth, and
    expensive global barriers — the regime where relaxed synchronisation
    "will be a vital optimization on future many-core designs".
    """
    return MachineSpec(
        name="Future many-core (16c/socket)",
        sockets=2,
        cores_per_socket=16,
        clock_hz=2.0e9,
        caches=(
            CacheLevel("L1D", 32 * KB, 1, 250 * GB),
            CacheLevel("L2", 512 * KB, 1, 120 * GB),
            CacheLevel("LLC", 32 * MB, 16, 320 * GB),
        ),
        mem_bw_socket=40.0 * GB,
        mem_bw_single=12.0 * GB,
        remote_bw=25.0 * GB,
        core_mlups=400e6,
        barrier_base_cycles=1200.0,
        barrier_cycles_per_thread=150.0,
        jitter_sigma=0.6,
    )


PRESETS = {
    "nehalem_ep": nehalem_ep,
    "core2_quad": core2_quad,
    "future_manycore": future_manycore,
}


def get_preset(name: str) -> MachineSpec:
    """Look up a preset by name (raises with the available keys)."""
    try:
        return PRESETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown machine preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
