"""Shared-cache residency model (LRU over blocks).

The pipelined scheme's whole premise is that a block, once loaded by the
team's front thread, stays in the shared cache until the rear thread has
done its updates.  Whether that holds depends on cache size, block size,
thread distance ``d_u`` and the number of in-flight blocks — "du and the
blocksize are strongly coupled, and larger blocks would require smaller
du" (Sect. 1.5).  This module models the outer-level cache as an LRU set
of blocks so the simulator can observe exactly that coupling: too-loose
pipelines evict blocks before the rear thread arrives and pay memory
bandwidth again.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

__all__ = ["EvictedBlock", "SharedCacheModel"]

BlockKey = Hashable


@dataclass(frozen=True)
class EvictedBlock:
    """An eviction record: which block left the cache and its dirty bytes."""

    key: BlockKey
    bytes: int
    dirty_bytes: int


class SharedCacheModel:
    """LRU cache of variable-size blocks with dirty tracking.

    This is a *working-set* model, not a set-associative simulator: the
    paper's analysis (Sect. 1.4) needs only "is the block still in the
    shared cache when thread k touches it", for which capacity+LRU is the
    standard abstraction.  An optional ``usable_fraction`` accounts for
    the part of the cache consumed by other data (page tables, counters,
    the one-layer shift overhang the paper mentions).
    """

    def __init__(self, capacity: int, usable_fraction: float = 0.85) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < usable_fraction <= 1.0:
            raise ValueError("usable_fraction must be in (0, 1]")
        self.capacity = int(capacity * usable_fraction)
        self._blocks: "OrderedDict[BlockKey, Tuple[int, int]]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- queries ------------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently occupied."""
        return self._used

    @property
    def resident_blocks(self) -> int:
        """Number of blocks currently resident."""
        return len(self._blocks)

    def contains(self, key: BlockKey) -> bool:
        """Is the block resident (does not update recency)?"""
        return key in self._blocks

    # -- operations ---------------------------------------------------------------

    def touch(self, key: BlockKey, nbytes: int,
              dirty_bytes: int = 0) -> Tuple[bool, List[EvictedBlock]]:
        """Access a block: returns ``(hit, evictions_caused)``.

        On a hit the block moves to MRU and its dirty bytes accumulate; on
        a miss the block is installed, evicting LRU blocks as needed.  A
        block larger than the whole cache is installed alone (streaming
        through), evicting everything else — the degenerate case the paper
        avoids by choosing the block size against the cache limit.
        """
        if nbytes <= 0:
            raise ValueError("block bytes must be positive")
        evicted: List[EvictedBlock] = []
        if key in self._blocks:
            old_bytes, old_dirty = self._blocks.pop(key)
            self._used -= old_bytes
            self._blocks[key] = (nbytes, max(old_dirty, dirty_bytes))
            self._used += nbytes
            self.hits += 1
            return True, evicted
        self.misses += 1
        self._blocks[key] = (nbytes, dirty_bytes)
        self._used += nbytes
        while self._used > self.capacity and len(self._blocks) > 1:
            old_key, (ob, od) = self._blocks.popitem(last=False)
            if old_key == key:  # never evict the block just installed
                self._blocks[key] = (ob, od)
                self._blocks.move_to_end(key)
                break
            self._used -= ob
            self.evictions += 1
            evicted.append(EvictedBlock(old_key, ob, od))
        return False, evicted

    def mark_dirty(self, key: BlockKey, dirty_bytes: int) -> None:
        """Raise the dirty-byte count of a resident block (no-op if absent)."""
        if key in self._blocks:
            nb, od = self._blocks[key]
            self._blocks[key] = (nb, max(od, dirty_bytes))

    def evict(self, key: BlockKey) -> Optional[EvictedBlock]:
        """Force eviction of one block; returns its record if present."""
        if key not in self._blocks:
            return None
        nb, dirty = self._blocks.pop(key)
        self._used -= nb
        self.evictions += 1
        return EvictedBlock(key, nb, dirty)

    def flush(self) -> List[EvictedBlock]:
        """Evict everything (end-of-run writeback accounting)."""
        out = [EvictedBlock(k, nb, d) for k, (nb, d) in self._blocks.items()]
        self.evictions += len(self._blocks)
        self._blocks.clear()
        self._used = 0
        return out

    @property
    def hit_rate(self) -> float:
        """Hits over all touches (NaN before first touch)."""
        total = self.hits + self.misses
        return self.hits / total if total else float("nan")
