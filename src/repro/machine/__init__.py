"""Machine substrate: topology, shared-cache model, STREAM calibration.

This is the simulated replacement for the paper's physical Nehalem EP
test bed (see DESIGN.md §2 for the substitution argument).  The
quantities exposed here — ``Ms``, ``Ms,1``, ``Mc``, cache group size,
barrier and coherence costs — are exactly the inputs of the paper's
performance model (Sect. 1.4) and of the discrete-event simulator in
:mod:`repro.sim`.
"""

from .topology import CacheLevel, MachineSpec, GB, MB, KB, US
from .cache import EvictedBlock, SharedCacheModel
from .stream import (
    StreamResult,
    host_stream_copy,
    saturation_curve,
    simulated_stream_copy,
)
from .presets import PRESETS, core2_quad, future_manycore, get_preset, nehalem_ep

__all__ = [
    "CacheLevel",
    "MachineSpec",
    "GB",
    "MB",
    "KB",
    "US",
    "EvictedBlock",
    "SharedCacheModel",
    "StreamResult",
    "simulated_stream_copy",
    "host_stream_copy",
    "saturation_curve",
    "PRESETS",
    "nehalem_ep",
    "core2_quad",
    "future_manycore",
    "get_preset",
]
