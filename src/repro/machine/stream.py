"""STREAM COPY calibration — simulated (machine model) and on the host.

Eq. 2 of the paper converts STREAM COPY bandwidth into the expected
baseline Jacobi performance: ``P0 = Ms / 16 bytes`` LUP/s.  The simulated
variant exposes the machine model's saturation curve (one stream is
capped at ``Ms,1``, the socket saturates at ``Ms``); the host variant
measures the actual NumPy copy bandwidth of this container, which the
kernel micro-benchmarks (experiment E10) use as their own ``Ms``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

import numpy as np

from .topology import MachineSpec

__all__ = ["StreamResult", "simulated_stream_copy", "host_stream_copy"]


@dataclass(frozen=True)
class StreamResult:
    """Bandwidth measurement/model outcome, bytes per second."""

    threads: int
    bandwidth: float
    per_thread: float

    def gbs(self) -> float:
        """Bandwidth in decimal GB/s for reports."""
        return self.bandwidth / 1e9


def simulated_stream_copy(machine: MachineSpec, threads: int,
                          spread_sockets: bool = False) -> StreamResult:
    """Model STREAM COPY bandwidth for ``threads`` concurrent streams.

    Each stream is capped at ``Ms,1``; each socket saturates at ``Ms``.
    ``spread_sockets=True`` distributes threads round-robin over sockets
    (as OpenMP scatter pinning would), otherwise they fill socket 0 first
    (compact pinning) — reproducing the familiar saturation plateaus.
    """
    if threads < 1:
        raise ValueError("need at least one thread")
    if threads > machine.total_cores:
        raise ValueError(
            f"{threads} threads exceed {machine.total_cores} cores")
    per_socket = [0] * machine.sockets
    for i in range(threads):
        if spread_sockets:
            per_socket[i % machine.sockets] += 1
        else:
            per_socket[i // machine.cores_per_socket] += 1
    total = 0.0
    for n in per_socket:
        if n:
            total += min(n * machine.mem_bw_single, machine.mem_bw_socket)
    total *= machine.stream_efficiency
    return StreamResult(threads=threads, bandwidth=total,
                        per_thread=total / threads)


def host_stream_copy(n_mb: int = 256, repeats: int = 3) -> StreamResult:
    """Measure NumPy copy bandwidth on the host (2 arrays, read+write).

    Counted STREAM-style: ``2 * nbytes`` moved per copy (one load stream,
    one store stream; NumPy assignment performs no RFO-avoiding NT stores,
    but we report the classical 2-stream figure the paper's Ms uses).
    """
    n = int(n_mb) * 1024 * 1024 // 8
    src = np.ones(n, dtype=np.float64)
    dst = np.empty_like(src)
    best = 0.0
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        np.copyto(dst, src)
        dt = time.perf_counter() - t0
        if dt > 0:
            best = max(best, 2.0 * src.nbytes / dt)
    return StreamResult(threads=1, bandwidth=best, per_thread=best)


def saturation_curve(machine: MachineSpec,
                     spread_sockets: bool = False) -> List[StreamResult]:
    """STREAM bandwidth for 1..total_cores threads (plot/report helper)."""
    return [simulated_stream_copy(machine, t, spread_sockets)
            for t in range(1, machine.total_cores + 1)]
