"""repro.threads — the pipelined scheme on real OS threads.

The third shared-memory rail: same grids, same counter-window policies
(Eq. 3), same bit-identical results as the simulated ``shared`` backend
— but each pipeline stage is a live ``threading.Thread`` blocking on a
condition-variable-backed :class:`repro.core.sync.CounterBoard` instead
of being stepped cooperatively by a scheduling loop.  Reached through
``repro.solve(..., backend="threads")`` or directly via
:func:`run_threaded`; every entry certifies the schedule with
:func:`repro.analysis.assert_legal` before any thread starts.
"""

from .executor import ThreadedPipelineExecutor, run_threaded

__all__ = ["ThreadedPipelineExecutor", "run_threaded"]
