"""The truly-threaded pipeline executor: stages on real OS threads.

The simulated rail (:class:`repro.core.executor.PipelineExecutor`)
interleaves pipeline stages cooperatively on one thread — any legal
interleaving, but never two stages *at the same instant*.  This
executor runs the identical schedule with one ``threading.Thread`` per
pipeline stage, gated by the same Eq. 3 counter-window policies through
a :class:`~repro.core.sync.CounterBoard` (condition-variable wait and
notify instead of the simulated rail's poll loop), so the paper's
central artifact — n teams × t threads sharing a cache — actually runs
concurrently for the first time.

Why the results are still bit-identical to the simulated rail: the
schedule-legality invariant (machine-checked by
:func:`repro.analysis.assert_legal`, which :func:`run_threaded` calls
**unconditionally** before any thread starts) guarantees that every
interleaving the sync window permits reads exactly the values program
order would have produced — each cell update reads inputs that are
already final and writes a location nothing else touches until the
window lets it.  True concurrency is just one more permitted
interleaving, so ``threads ≡ shared`` holds byte-for-byte; the
differential battery in ``tests/test_threads.py`` pins it.

What real threads buy depends on the engine.  Pure-numpy engines
overlap wherever numpy releases the GIL (large-array arithmetic), the
``numba`` engine's fused loops release it explicitly (``nogil``) for
the compiled multiply-add — and the ``numba-deep`` engine extends that
to the *entire block traversal* (gather, boundary patch and
destination write in one ``nogil`` region), so a stage holds the GIL
only for its per-block Python dispatch.  On free-threaded CPython
(3.13t) every engine runs fully concurrently.  Single-core hosts still get a
correct, wall-clock-parallel executor — just no speedup, which is why
the perf gate for >1x lives behind a core-count/numba guard.

Thread-safety inventory (everything a stage thread touches):

* field arrays / level bookkeeping — disjoint slices per the certified
  schedule; the storage validation reads stay correct because any
  concurrently written cell is within the two-buffer window by
  legality;
* engines — stateless between calls (scratch is allocated per call;
  the engine contract in :mod:`repro.engine.base` requires it);
* executor counters — per-stage :class:`ExecutionStats`, merged after
  the join (shared ``+=`` would lose updates);
* tracer — :class:`repro.obs.tracer.Tracer` accumulates per-thread and
  merges on ``finish()``; span rows are keyed by stage tid, so a
  traced threaded solve lands on one timeline with one row per stage.
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np

from ..core.executor import ExecutionStats, PipelineExecutor
from ..core.parameters import PipelineConfig
from ..core.pipeline import SolveResult
from ..core.sync import CounterBoard, SyncAborted
from ..grid.grid3d import Grid3D
from ..kernels.jacobi import jacobi7
from ..kernels.stencils import StarStencil
from ..obs.tracer import Tracer

__all__ = ["ThreadedPipelineExecutor", "run_threaded"]


class ThreadedPipelineExecutor(PipelineExecutor):
    """Run a certified pipelined schedule with one OS thread per stage.

    Construction mirrors :class:`PipelineExecutor` (same decomposition,
    policy, storage and engine resolution); only the pass loop differs.
    There is no ``order`` knob — the interleaving is whatever the
    hardware scheduler produces within the sync window, which is
    exactly the set of interleavings the static analyzer certified.

    ``watchdog_s`` bounds any single sync wait; a legal schedule never
    trips it, so it exists purely to turn upstream bugs into a
    diagnosable :class:`~repro.core.sync.SyncWaitTimeout` instead of a
    hung process (CI runs the stress hammer under ``timeout`` as the
    outer belt-and-braces).
    """

    def __init__(
        self,
        grid: Grid3D,
        field: np.ndarray,
        config: PipelineConfig,
        stencil: StarStencil,
        validate: bool = True,
        record_trace: bool = False,
        tracer: Optional[Tracer] = None,
        watchdog_s: Optional[float] = 120.0,
    ) -> None:
        super().__init__(grid, field, config, stencil,
                         validate=validate, record_trace=record_trace,
                         tracer=tracer)
        self.watchdog_s = watchdog_s

    def run_pass(self, pass_idx: int) -> None:
        """One pipeline pass: spawn stage threads, join, merge, re-raise."""
        P = self.config.n_stages
        board = CounterBoard(self.policy, P, self.decomp.n_traversal_blocks,
                             timeout=self.watchdog_s)
        stage_stats = [
            ExecutionStats(per_stage_blocks=[0] * P,
                           trace=[] if self.stats.trace is not None else None)
            for _ in range(P)
        ]
        threads = [
            threading.Thread(
                target=self._stage_body,
                args=(pass_idx, s, board, stage_stats[s]),
                name=f"repro-stage-{s}",
                daemon=True,
            )
            for s in range(P)
        ]
        with self.tracer.span("pass", cat="threads", idx=pass_idx,
                              stages=P):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        failure = board.failure
        if failure is not None:
            raise failure
        self._merge_stage_stats(board, stage_stats)

    # -- internals ---------------------------------------------------------------

    def _stage_body(self, pass_idx: int, stage: int, board: CounterBoard,
                    stats: ExecutionStats) -> None:
        """What one stage thread runs: wait / execute / publish, per block.

        Any exception — storage legality, engine failure, a peer's
        abort — is routed into the board, which wakes every waiter so
        the whole pass unwinds instead of deadlocking on a counter
        that will never move again.
        """
        try:
            for idx in range(self.decomp.n_traversal_blocks):
                board.wait_ready(stage)
                self._execute_block(pass_idx, stage, idx, stats=stats)
                board.advance(stage)
        except SyncAborted:
            pass  # a peer failed first; its exception is on the board
        except BaseException as exc:  # noqa: BLE001 - must release peers
            board.abort(exc)

    def _merge_stage_stats(self, board: CounterBoard,
                           stage_stats: List[ExecutionStats]) -> None:
        """Fold the per-stage sinks into ``self.stats`` after the join.

        Counters add; the counter gap comes from the board (the only
        place a consistent cross-stage view existed); the execution
        trace, if recorded, is merged in (pass, stage, block) order —
        under real concurrency there is no meaningful single global
        order, so the merged trace documents per-stage program order.
        """
        agg = self.stats
        for s, st in enumerate(stage_stats):
            agg.block_ops += st.block_ops
            agg.empty_block_ops += st.empty_block_ops
            agg.updates += st.updates
            agg.cells_updated += st.cells_updated
            agg.per_stage_blocks[s] += st.per_stage_blocks[s]
            if agg.trace is not None and st.trace is not None:
                agg.trace.extend(st.trace)
        if board.max_counter_gap > self.stats.max_counter_gap:
            self.stats.max_counter_gap = board.max_counter_gap
        if self.tracer.enabled:
            # The threaded analogues of the simulated rail's sync
            # pressure counters: real blocked waits, not poll-loop
            # iterations — comparable in spirit, not in magnitude.
            if board.blocked_polls:
                self.tracer.count("sync.blocked_polls", board.blocked_polls)
            if board.drain_blocks:
                self.tracer.count("core.drain_blocks", board.drain_blocks)


def run_threaded(
    grid: Grid3D,
    field: np.ndarray,
    config: PipelineConfig,
    stencil: Optional[StarStencil] = None,
    validate: bool = True,
    record_trace: bool = False,
    tracer: Optional[Tracer] = None,
    watchdog_s: Optional[float] = 120.0,
) -> SolveResult:
    """Advance ``field`` by ``config.total_updates`` levels on real threads.

    The wall-clock-parallel sibling of
    :func:`repro.core.pipeline.run_pipelined`, and the body behind
    ``repro.solve(..., backend="threads")``.

    A true-threads executor has no simulated scheduler to hide behind,
    so the schedule is certified **unconditionally** with
    :func:`repro.analysis.assert_legal` before the first thread starts
    — an illegal schedule raises
    :class:`~repro.analysis.StaticAnalysisError` with a witness
    interleaving and never touches the field.  ``validate`` then only
    controls the runtime storage checks (as on the other backends);
    the static proof cannot be switched off.
    """
    from ..analysis import assert_legal

    st = stencil or jacobi7()
    assert_legal(config, grid.shape, (1, 1, 1),
                 radius=getattr(st, "radius", 1))
    ex = ThreadedPipelineExecutor(
        grid, field, config, st,
        validate=validate, record_trace=record_trace, tracer=tracer,
        watchdog_s=watchdog_s,
    )
    out = ex.run()
    return SolveResult(
        field=out,
        levels_advanced=config.total_updates,
        stats=ex.stats,
        config=config,
        backend="threads",
    )
