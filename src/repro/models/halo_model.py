"""Fig. 5: analytic model of the multi-layer halo advantage (Sect. 2.1).

For cubic subdomains of size ``L^3``, exchanging ``h`` halo layers every
``h`` updates trades three effects:

* **message aggregation** — one big message instead of ``h`` small ones
  wins in the latency-dominated regime (small ``L``);
* **extra halo work** — update ``s`` covers a region ``h - s`` layers
  larger per side, so the bulk work grows by the trapezoid volume;
* **bigger messages** — the h-layer (ghost-expanded) faces carry more
  bytes.

The paper's parameters: QDR-IB (3.2 GB/s, 1.8 µs), single-node
performance 2000 MLUP/s independent of ``L``, no computation/communication
overlap.  "While only simple algebra is involved, the resulting
expressions are very complex, so we restrict ourselves to a graphical
analysis" — we do the same numerically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .network import NetworkModel, qdr_infiniband

__all__ = ["HaloModel", "HaloPoint", "fig5_parameters"]

W = 8  # bytes per double


@dataclass(frozen=True)
class HaloPoint:
    """One (L, h) evaluation of the model."""

    L: int
    h: int
    time_per_update: float
    compute_time: float
    comm_time: float

    @property
    def efficiency(self) -> float:
        """Computation over overall time — the inset of Fig. 5."""
        return self.compute_time / (self.compute_time + self.comm_time)


@dataclass(frozen=True)
class HaloModel:
    """Execution-time model for h-layer halo exchange on cubic subdomains.

    ``node_lups`` is the assumed single-node performance (the paper uses
    2000 MLUP/s for a vector-mode hybrid Jacobi solver); ``network`` the
    Hockney model.  Messages follow the ghost-cell-expansion scheme: the
    three directions are exchanged consecutively and each message spans
    the already-extended extents of previously exchanged dimensions
    (Fig. 4), so edges and corners ride along for free.
    """

    node_lups: float = 2000e6
    network: NetworkModel = qdr_infiniband()
    #: Include the ghost-expansion growth of message sizes (+2h in already
    #: exchanged dimensions).  The paper's own model appears to neglect it
    #: ("the amount of data communication per stencil update is roughly
    #: the same as for no temporal blocking, except for edge and corner
    #: contributions"); set False to reproduce that accounting.
    expanded_messages: bool = True

    def __post_init__(self) -> None:
        if self.node_lups <= 0:
            raise ValueError("node performance must be positive")

    # -- building blocks -----------------------------------------------------------

    def bulk_cells(self, L: int, h: int) -> int:
        """Cells updated during one h-update cycle, incl. trapezoid extra.

        Update ``s`` (1-based) covers ``(L + 2*(h-s))^3`` cells: "extra
        work is involved on the boundaries because update number s covers
        a domain that is h − s layers larger in each direction".
        """
        if L < 1 or h < 1:
            raise ValueError("L and h must be >= 1")
        return sum((L + 2 * (h - s)) ** 3 for s in range(1, h + 1))

    def message_bytes(self, L: int, h: int) -> List[float]:
        """Per-direction message sizes of the 3-phase expanded exchange.

        Direction ``d`` sends a slab of ``h`` layers spanning the full
        (already exchanged, hence ``+2h``) extent in earlier dimensions
        and the core extent in later ones.
        """
        sizes = []
        grow = 2 * h if self.expanded_messages else 0
        for d in range(3):
            ext = 1.0
            for dd in range(3):
                if dd == d:
                    continue
                ext *= (L + grow) if dd < d else L
            sizes.append(h * ext * W)
        return sizes

    def comm_time(self, L: int, h: int) -> float:
        """Time for one full halo exchange (both directions, 3 phases)."""
        return sum(self.network.exchange_time(m) for m in self.message_bytes(L, h))

    # -- model outputs ----------------------------------------------------------------

    def evaluate(self, L: int, h: int) -> HaloPoint:
        """Average time per update of the h-layer scheme on an L^3 core."""
        compute = self.bulk_cells(L, h) / self.node_lups
        comm = self.comm_time(L, h)
        return HaloPoint(L=L, h=h,
                         time_per_update=(compute + comm) / h,
                         compute_time=compute / h,
                         comm_time=comm / h)

    def advantage(self, L: int, h: int) -> float:
        """Fig. 5 main panel: time(h=1 scheme) / time(h-layer scheme).

        Values above 1 mean the multi-layer exchange wins.
        """
        return self.evaluate(L, 1).time_per_update / self.evaluate(L, h).time_per_update

    def advantage_series(self, L_values: Sequence[int],
                         h: int) -> List[Tuple[int, float]]:
        """The (L, advantage) series for one halo width."""
        return [(L, self.advantage(L, h)) for L in L_values]

    def efficiency_series(self, L_values: Sequence[int],
                          h: int) -> List[Tuple[int, float]]:
        """The inset: (L, computation/overall) for one halo width."""
        return [(L, self.evaluate(L, h).efficiency) for L in L_values]

    def crossover_L(self, h: int, L_max: int = 512) -> int:
        """Largest L (binary-search free, linear scan) with advantage > 1.

        The paper observes gains only "at even smaller L ≲ 20"; this
        returns that boundary for a given h.
        """
        last = 0
        for L in range(1, L_max + 1):
            if self.advantage(L, h) > 1.0:
                last = L
        return last


def fig5_parameters() -> HaloModel:
    """The exact parameter set of Fig. 5 (2000 MLUP/s node, QDR-IB)."""
    return HaloModel(node_lups=2000e6, network=qdr_infiniband())
