"""Eq. 2: baseline Jacobi performance from STREAM bandwidth.

``P0 = Ms / 16 bytes`` LUP/s — a "perfect" spatially blocked Jacobi with
non-temporal stores moves 16 bytes per update over the memory bus, so the
achievable STREAM COPY bandwidth bounds its performance.  On the paper's
Nehalem node (18.5 GB/s per socket) this gives the quoted expectation of
2.3 GLUP/s for the whole node.
"""

from __future__ import annotations

from ..machine.topology import MachineSpec

__all__ = ["P0_BYTES_PER_LUP", "baseline_lups", "code_balance_wf"]

#: Bytes per lattice-site update of the NT-store baseline (8 load + 8 store).
P0_BYTES_PER_LUP = 16.0


def baseline_lups(stream_bandwidth: float, bytes_per_lup: float = P0_BYTES_PER_LUP) -> float:
    """Eq. 2: expected LUP/s given a STREAM COPY bandwidth in bytes/s."""
    if stream_bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    if bytes_per_lup <= 0:
        raise ValueError("bytes_per_lup must be positive")
    return stream_bandwidth / bytes_per_lup


def code_balance_wf(words_mem: float, flops: float = 6.0) -> float:
    """Code balance in words per flop (the paper's ``Bc``).

    The naive kernel with read-for-ownership is ``8/6 W/F``; spatial
    blocking + NT stores reduce it to ``2/6 = 0.33 W/F`` (three words per
    update counted as 16 B / 8 B-word halves... the paper states 0.33 W/F
    for the perfect baseline, i.e. 2 words per 6 flops).
    """
    if flops <= 0:
        raise ValueError("flops must be positive")
    return words_mem / flops


def node_p0(machine: MachineSpec) -> float:
    """Eq. 2 for a whole node: all sockets' Ms over 16 bytes, in LUP/s."""
    return baseline_lups(machine.mem_bw_node)


def socket_p0(machine: MachineSpec) -> float:
    """Eq. 2 for one socket, in LUP/s."""
    return baseline_lups(machine.mem_bw_socket)
