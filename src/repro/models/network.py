"""Latency/bandwidth (Hockney) network model for the cluster rail.

Sect. 2.1 sets "the parameters for a QDR-InfiniBand network here, with an
asymptotic (large-message) unidirectional bandwidth of 3.2 GB/s and a
latency of 1.8 µs".  The paper further notes (Sect. 2.2) that copying
halo data between boundary cells and message buffers "causes about the
same overhead as the actual data transfer", which the ``copy_factor``
models, and that the MPI library supported no asynchronous transfers —
communication never overlaps computation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkModel", "qdr_infiniband"]


@dataclass(frozen=True)
class NetworkModel:
    """Hockney model ``t(m) = latency + m / bandwidth`` plus buffer copies.

    Parameters
    ----------
    latency:
        Per-message startup in seconds.
    bandwidth:
        Asymptotic unidirectional bandwidth in bytes/s.
    copy_factor:
        Extra time per byte for packing/unpacking message buffers,
        expressed as a multiple of the wire byte time (1.0 = copying costs
        as much as the transfer, the paper's profiling result; 0 disables).
    """

    latency: float = 1.8e-6
    bandwidth: float = 3.2e9
    copy_factor: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0 or self.copy_factor < 0:
            raise ValueError("invalid network parameters")

    def message_time(self, nbytes: float) -> float:
        """Time to move one message of ``nbytes`` (incl. buffer copies)."""
        if nbytes < 0:
            raise ValueError("negative message size")
        wire = nbytes / self.bandwidth
        return self.latency + wire * (1.0 + self.copy_factor)

    def exchange_time(self, nbytes_per_direction: float,
                      messages: int = 2) -> float:
        """Time for a (bidirectional) face exchange of ``messages`` messages.

        The paper's code has no overlap, so both directions serialise on
        the NIC: two messages of ``nbytes`` each.
        """
        return messages * self.message_time(nbytes_per_direction)

    def effective_bandwidth(self, nbytes: float) -> float:
        """Achieved bandwidth for one message (the latency-rolloff curve).

        "Effective bandwidth rises dramatically with growing message size
        in the latency-dominated regime" — this is that curve.
        """
        if nbytes <= 0:
            return 0.0
        return nbytes / self.message_time(nbytes)

    def half_performance_length(self) -> float:
        """``n_1/2``: message size achieving half the asymptotic bandwidth."""
        return self.latency * self.bandwidth / (1.0 + self.copy_factor)


def qdr_infiniband(copy_factor: float = 0.0) -> NetworkModel:
    """The paper's QDR-IB parameters (3.2 GB/s, 1.8 µs)."""
    return NetworkModel(latency=1.8e-6, bandwidth=3.2e9,
                        copy_factor=copy_factor)
