"""Eqs. 4/5: the single-cache diagnostic performance model (Sect. 1.4).

Assumptions (quoted from the paper): the shared cache holds ``(t-1)*d_u``
blocks; the blocksize makes the cache supply one load and one store per
update; all data from memory streams through the shared cache; upper
cache levels are infinitely fast.  Then the ``t*T`` block updates of a
team sweep take::

    Tb = 16 B / Ms,1 * (1 + (t*T - 1) * Ms,1 / Mc)          (Eq. 4)

and the speedup over the standard Jacobi is::

    T0/Tb = (Ms,1 / Ms) * t*T / (1 + (t*T - 1) * Ms,1/Mc)   (Eq. 5)

with the large-``t*T`` limit ``Mc/Ms``.  On Nehalem (Ms/Ms,1 ≈ 2,
Mc/Ms,1 ≈ 8, t = 4) the speedup is ``16T / (7 + 4T)`` → 1.45 at T = 1.
The model is *diagnostic*: the paper shows it matches at T = 1 and fails
for larger T once execution decouples from memory bandwidth, which our
simulator reproduces (see bench_model_validation).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.topology import MachineSpec

__all__ = ["PipelineModel", "nehalem_speedup_formula"]


@dataclass(frozen=True)
class PipelineModel:
    """The paper's Eq. 4/5 model for one cache group.

    Parameters mirror Sect. 1.4: ``ms`` is the saturated socket bandwidth
    ``Ms``, ``ms1`` the single-thread bandwidth ``Ms,1`` and ``mc`` the
    multi-threaded shared-cache bandwidth ``Mc`` (bytes/s each).
    """

    ms: float
    ms1: float
    mc: float

    def __post_init__(self) -> None:
        if min(self.ms, self.ms1, self.mc) <= 0:
            raise ValueError("bandwidths must be positive")
        if self.ms1 > self.ms:
            raise ValueError("Ms,1 cannot exceed Ms")

    @staticmethod
    def from_machine(machine: MachineSpec) -> "PipelineModel":
        """Extract the three bandwidths from a machine spec."""
        return PipelineModel(ms=machine.mem_bw_socket,
                             ms1=machine.mem_bw_single,
                             mc=machine.shared_cache.bandwidth)

    def block_time(self, t: int, T: int, cells: int = 1) -> float:
        """Eq. 4: time for the ``t*T`` updates of a team sweep, per cell.

        ``cells`` scales to a whole block.  Bytes: 16 from memory for the
        first update, ``2*8`` through the cache for each further update.
        """
        if t < 1 or T < 1:
            raise ValueError("t and T must be >= 1")
        tb = 16.0 / self.ms1 * (1.0 + (t * T - 1) * self.ms1 / self.mc)
        return tb * cells

    def speedup(self, t: int, T: int) -> float:
        """Eq. 5: predicted speedup of pipelined blocking over standard."""
        if t < 1 or T < 1:
            raise ValueError("t and T must be >= 1")
        tT = t * T
        return (self.ms1 / self.ms) * tT / (1.0 + (tT - 1) * self.ms1 / self.mc)

    def speedup_limit(self) -> float:
        """Large-``t*T`` limit of Eq. 5: ``Mc / Ms``."""
        return self.mc / self.ms

    def predicted_lups(self, t: int, T: int, baseline_lups: float) -> float:
        """Absolute prediction: Eq. 5 speedup applied to a measured baseline."""
        return self.speedup(t, T) * baseline_lups

    def bandwidth_starved(self) -> bool:
        """True when ``Ms,1`` is close to ``Ms`` (temporal blocking pays).

        "The speedup increases if Ms,1 is close to Ms, which is just
        another way of saying that the processor is bandwidth-starved."
        """
        return self.ms / self.ms1 < 1.5


def nehalem_speedup_formula(T: int) -> float:
    """The paper's closed form for Nehalem at t = 4: ``16T / (7 + 4T)``.

    Derived from Eq. 5 with ``Ms/Ms,1 = 2`` and ``Mc/Ms,1 = 8``; equals
    1.4545… at T = 1, as quoted ("or 1.45 at T = 1").
    """
    if T < 1:
        raise ValueError("T must be >= 1")
    return 16.0 * T / (7.0 + 4.0 * T)
