"""Analytic models from the paper: Eq. 2, Eqs. 4/5, Hockney, Fig. 5.

These are deliberately separate from the simulator so that the benches
can display *model vs simulation vs paper* side by side — including where
the paper itself shows the model failing (T >= 2 in Fig. 3).
"""

from .baseline import (
    P0_BYTES_PER_LUP,
    baseline_lups,
    code_balance_wf,
    node_p0,
    socket_p0,
)
from .pipeline_model import PipelineModel, nehalem_speedup_formula
from .network import NetworkModel, qdr_infiniband
from .halo_model import HaloModel, HaloPoint, fig5_parameters

__all__ = [
    "P0_BYTES_PER_LUP",
    "baseline_lups",
    "code_balance_wf",
    "node_p0",
    "socket_p0",
    "PipelineModel",
    "nehalem_speedup_formula",
    "NetworkModel",
    "qdr_infiniband",
    "HaloModel",
    "HaloPoint",
    "fig5_parameters",
]
